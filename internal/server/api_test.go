package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// testCampaign is the quickstart campaign scaled to n experiments: the
// real scifi target and a real workload, so submitted campaigns run the
// full emulation path.
func testCampaign(name string, n int) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
		Trigger:        trigger.Spec{Kind: "cycle", Occurrence: 1},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           2026,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.All()["sort16"],
		LogMode:        campaign.LogNormal,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// pollState waits until the campaign reaches want (or any terminal
// state) and returns the final status.
func pollState(t *testing.T, base, tenant, name, want string) JobStatus {
	t.Helper()
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s", base, tenant, name)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, url, &st); code == http.StatusOK {
			switch st.State {
			case want, StateDone, StateFailed, StateCancelled:
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s/%s never reached %s", tenant, name, want)
	return JobStatus{}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestSubmitPollResultsRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{Boards: 2, MaxConcurrent: 2})
	defer shutdownServer(t, s)

	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("rt", 20), Boards: 2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}

	st := pollState(t, ts.URL, "alice", "rt", StateDone)
	if st.State != StateDone {
		t.Fatalf("final state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.Experiments != 20 {
		t.Fatalf("summary = %+v, want 20 experiments", st.Summary)
	}

	var res ResultsResponse
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/alice/rt/results?records=1", &res); code != http.StatusOK {
		t.Fatalf("results = %d", code)
	}
	if res.Report == "" {
		t.Error("results returned an empty report")
	}
	if len(res.Records) < 20 {
		t.Errorf("results returned %d records, want >= 20", len(res.Records))
	}

	// The list endpoint shows the job; unknown campaigns are 404.
	var all []JobStatus
	if code := getJSON(t, ts.URL+"/api/v1/campaigns", &all); code != http.StatusOK || len(all) != 1 {
		t.Errorf("list = %d with %d jobs, want 200 with 1", code, len(all))
	}
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/alice/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/nobody/rt", nil); code != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d, want 404", code)
	}
}

func TestSubmitRejectsBadPlans(t *testing.T) {
	s, ts := newTestServer(t, Config{Boards: 1, MaxConcurrent: 1})
	defer shutdownServer(t, s)

	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"bad tenant", SubmitRequest{Tenant: "../evil", Campaign: testCampaign("c", 5)}},
		{"no campaign", SubmitRequest{Tenant: "alice"}},
		{"bad technique", SubmitRequest{Tenant: "alice", Campaign: testCampaign("c", 5), Technique: "voodoo"}},
		{"invalid campaign", SubmitRequest{Tenant: "alice", Campaign: &campaign.Campaign{Name: "c"}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: submit = %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
	// Malformed JSON is a 400 too, not a panic.
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit = %d, want 400", resp.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{Boards: 1, MaxConcurrent: 1, QueueDepth: 1})
	defer shutdownServer(t, s)

	// First campaign occupies the single runner slot. It is cancelled at
	// the end, never run to completion, so it can be made long enough
	// that it cannot finish (and free its slot) while the admission
	// checks below are still in flight — the fast path made 2000
	// experiments a matter of milliseconds.
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("a", 100000),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit a = %d: %s", resp.StatusCode, body)
	}
	pollState(t, ts.URL, "alice", "a", StateRunning)

	// ...the second fills the queue...
	resp, body = postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("b", 5),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit b = %d: %s", resp.StatusCode, body)
	}

	// ...and the third is turned away with 429.
	resp, _ = postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("c", 5),
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over capacity = %d, want 429", resp.StatusCode)
	}
	// A rejected submission leaves no durable job row behind.
	if _, ok := s.durableState("alice", "c"); ok {
		t.Error("rejected submission left a durable job row")
	}

	// Resubmitting a live campaign is a conflict, not a new job.
	resp, _ = postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("a", 100000),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit = %d, want 409", resp.StatusCode)
	}

	// Unblock the queue so shutdown stays fast.
	postJSON(t, ts.URL+"/api/v1/campaigns/alice/a/cancel", nil)
	pollState(t, ts.URL, "alice", "a", StateCancelled)
}

func TestCancelMidRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Boards: 2, MaxConcurrent: 1})
	defer shutdownServer(t, s)

	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("long", 5000), Boards: 2, Checkpoint: 8,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	// Wait for real progress so the cancel lands mid-run.
	url := ts.URL + "/api/v1/campaigns/alice/long"
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		getJSON(t, url, &st)
		if st.Progress != nil && st.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body = postJSON(t, url+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d: %s", resp.StatusCode, body)
	}
	st := pollState(t, ts.URL, "alice", "long", StateCancelled)
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", st.State)
	}
	if st.Summary == nil || st.Summary.Experiments == 0 || st.Summary.Experiments >= 5000 {
		t.Fatalf("cancelled summary = %+v, want partial progress", st.Summary)
	}
	// Cancelling a terminal campaign is a 409.
	resp, _ = postJSON(t, url+"/cancel", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel cancelled = %d, want 409", resp.StatusCode)
	}
	// Partial results are still analyzable.
	var res ResultsResponse
	if code := getJSON(t, url+"/results", &res); code != http.StatusOK || res.Report == "" {
		t.Errorf("results after cancel = %d (report %d bytes)", code, len(res.Report))
	}
}

func TestPauseResume(t *testing.T) {
	s, ts := newTestServer(t, Config{Boards: 1, MaxConcurrent: 1})
	defer shutdownServer(t, s)

	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: testCampaign("pr", 3000),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	pollState(t, ts.URL, "alice", "pr", StateRunning)
	url := ts.URL + "/api/v1/campaigns/alice/pr"

	if resp, body := postJSON(t, url+"/pause", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	getJSON(t, url, &st)
	if st.State != StatePaused {
		t.Fatalf("state after pause = %s", st.State)
	}
	// Pausing twice is a state error.
	if resp, _ := postJSON(t, url+"/pause", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("double pause = %d, want 409", resp.StatusCode)
	}
	if resp, body := postJSON(t, url+"/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume = %d: %s", resp.StatusCode, body)
	}
	postJSON(t, url+"/cancel", nil)
	pollState(t, ts.URL, "alice", "pr", StateCancelled)
}
