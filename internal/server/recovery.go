package server

import "fmt"

// recoverJobs scans every tenant database in the data directory at boot
// and re-enqueues each job row still marked pending — campaigns that
// were queued, running, or mid-flight when the previous daemon died.
// Opening the databases replays their WALs, so the recovered jobs
// resume from the last durable cursor (execute unions the stored
// checkpoint with the durable end records, exactly like `goofi resume`).
func (s *Server) recoverJobs() error {
	tenants, err := s.tenants.Tenants()
	if err != nil {
		return err
	}
	for _, tenant := range tenants {
		_, db, release, err := s.tenants.Acquire(tenant)
		if err != nil {
			return fmt.Errorf("server: recover tenant %s: %w", tenant, err)
		}
		specs, err := pendingJobRows(db)
		release()
		if err != nil {
			return fmt.Errorf("server: recover tenant %s: %w", tenant, err)
		}
		for _, spec := range specs {
			j := &job{spec: *spec, recover: true, state: StatePending}
			if err := s.enqueue(j); err != nil {
				// The queue is sized for steady-state admission; a boot
				// backlog beyond it stays pending on disk and is picked
				// up by a later restart rather than lost.
				break
			}
		}
	}
	return nil
}
