package server

// The sharded execution path: instead of running a core.Runner itself,
// the daemon builds a shard.Coordinator over the tenant's store and lets
// workers — in-process goroutines by default, external `goofi
// shard-worker` processes on request — lease ranges and report records
// through it. Teardown and state transitions mirror execute() so a
// sharded job is indistinguishable from a solo one at the API, and its
// merged results are byte-identical (the shard conformance suite pins
// both).

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"goofi/internal/core"
	"goofi/internal/shard"
	"goofi/internal/telemetry"
)

// shardDir is a job's worker-database directory under the data dir.
func (s *Server) shardDir(tenant, name string) string {
	safe := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			return c
		case c == '.' || c == '_' || c == '-':
			return c
		}
		return '_'
	}, tenant+"__"+name)
	return filepath.Join(s.cfg.DataDir, "shards", safe)
}

func (s *Server) executeSharded(ctx context.Context, j *job) {
	spec := &j.spec
	name := spec.Campaign.Name
	fail := func(err error) {
		j.setState(StateFailed, err.Error())
		s.markDurable(name, spec.Tenant, StateFailed)
	}
	st, db, release, err := s.tenants.Acquire(spec.Tenant)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	camp, err := st.GetCampaign(name)
	if err != nil {
		fail(err)
		return
	}
	tsd, err := st.GetTargetSystem(camp.TargetName)
	if err != nil {
		fail(err)
		return
	}
	if !j.recover {
		// Fresh submission: same clean slate as execute(), plus the
		// worker shard databases of any earlier run of this campaign.
		if err := st.DeleteCheckpoint(name); err != nil {
			fail(err)
			return
		}
		if err := st.DeleteExperiments(name); err != nil {
			fail(err)
			return
		}
		if err := st.DeleteTelemetry(name); err != nil {
			fail(err)
			return
		}
		if err := os.RemoveAll(s.shardDir(spec.Tenant, name)); err != nil {
			fail(err)
			return
		}
	}
	coord, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Store:          st,
		Campaign:       camp,
		Target:         tsd,
		Technique:      spec.Technique,
		TargetKind:     spec.TargetKind,
		TargetParams:   spec.TargetParams,
		ImageBytes:     spec.ImageBytes,
		Shards:         spec.Shards,
		Checkpoint:     spec.Checkpoint,
		HeartbeatEvery: s.cfg.ShardHeartbeat,
		LeaseTTL:       s.cfg.ShardLeaseTTL,
	})
	if err != nil {
		fail(err)
		return
	}
	prog := telemetry.NewProgress(s.fleet.Capacity())
	prog.Start(name, camp.NumExperiments)
	prog.SetPhase("sharded")
	// Surface the worker fleet (registration, leases, heartbeat age) in
	// /progress snapshots for as long as the coordinator lives.
	prog.SetWorkersFn(func() []telemetry.WorkerStatus {
		fleet := coord.Fleet()
		out := make([]telemetry.WorkerStatus, len(fleet))
		for i, ws := range fleet {
			out[i] = telemetry.WorkerStatus{
				Name:        ws.Name,
				Host:        ws.Host,
				Quarantined: ws.Quarantined,
				Leases:      ws.Leases,
				Failures:    ws.Failures,
				LastBeatAge: ws.LastBeatAge,
			}
		}
		return out
	})
	merged, _ := coord.Progress()
	prog.AddDone(merged)

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	j.mu.Lock()
	j.coord = coord
	j.shardStop = wcancel
	j.prog = prog
	j.state = StateRunning
	if j.cancelled {
		wcancel()
	}
	j.mu.Unlock()

	var wg sync.WaitGroup
	var workerMu sync.Mutex
	var workerErr error
	workersDead := make(chan struct{})
	if !spec.ExternalWorkers {
		for i := 0; i < spec.Shards; i++ {
			w, err := shard.NewWorker(shard.WorkerConfig{
				Name:      fmt.Sprintf("%s-w%d", spec.Tenant, i),
				Dir:       filepath.Join(s.shardDir(spec.Tenant, name), fmt.Sprintf("w%d", i)),
				Boards:    spec.Boards,
				Transport: shard.Direct{C: coord},
				Poll:      20 * time.Millisecond,
			})
			if err != nil {
				fail(err)
				wcancel()
				coord.Close()
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := w.Run(wctx); err != nil && wctx.Err() == nil {
					workerMu.Lock()
					if workerErr == nil {
						workerErr = err
					}
					workerMu.Unlock()
				}
			}()
		}
		go func() {
			wg.Wait()
			close(workersDead)
		}()
	}

	// Mirror merge progress into the job's progress snapshot while the
	// coordinator runs.
	progDone := make(chan struct{})
	go func() {
		defer close(progDone)
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		last := merged
		for {
			select {
			case <-wctx.Done():
				return
			case <-coord.Done():
				now, _ := coord.Progress()
				prog.AddDone(now - last)
				return
			case <-t.C:
				now, _ := coord.Progress()
				prog.AddDone(now - last)
				last = now
			}
		}
	}()

	exhausted := false
	select {
	case <-coord.Done():
	case <-wctx.Done():
	case <-workersDead:
		// Every in-process worker exited without finishing the plan:
		// nothing is left to drive the campaign.
		exhausted = true
	}
	wcancel()
	wg.Wait()
	<-progDone
	closeErr := coord.Close()
	j.mu.Lock()
	cancelled := j.cancelled
	total, _ := coord.Progress()
	// Like a resumed solo run, the summary covers only what this
	// execution merged, not what recovery found already durable.
	j.summary = &core.Summary{Campaign: name, Experiments: total - merged}
	j.mu.Unlock()

	if ctx.Err() != nil {
		// Killed: durable rows and the pending job row stay for the next
		// boot to resume, exactly like the solo path.
		j.setState(StatePending, "")
		return
	}
	if err := coord.Err(); err != nil {
		fail(err)
		return
	}
	switch {
	case cancelled:
		j.setState(StateCancelled, "")
		s.markDurable(name, spec.Tenant, StateCancelled)
		return
	case !coord.Complete():
		workerMu.Lock()
		err := workerErr
		workerMu.Unlock()
		if err != nil {
			fail(fmt.Errorf("shard workers failed: %w", err))
			return
		}
		if exhausted {
			fail(fmt.Errorf("shard workers exhausted before the plan completed"))
			return
		}
		// Stopped short by shutdown: stay pending for the next boot.
		j.setState(StatePending, "")
		return
	}
	if closeErr != nil {
		fail(closeErr)
		return
	}
	if err := db.Checkpoint(); err != nil {
		fail(err)
		return
	}
	// Done: the worker databases served their purpose.
	_ = os.RemoveAll(s.shardDir(spec.Tenant, name))
	j.setState(StateDone, "")
	s.markDurable(name, spec.Tenant, StateDone)
}
