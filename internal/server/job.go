package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/shard"
	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
	"goofi/internal/workload"

	// Registered target systems. The daemon reaches every target through
	// the core registry; the blank imports run each RegisterTarget init.
	_ "goofi/internal/pinlevel"
	_ "goofi/internal/proctarget"
	_ "goofi/internal/scifi"
	_ "goofi/internal/swifi"
)

// SubmitRequest is the POST /api/v1/campaigns body: everything goofid
// needs to configure, set up, and run one campaign in a tenant's
// namespace. The zero values of the optional fields reproduce the
// `goofi run` defaults, which is what keeps a submitted campaign
// byte-identical to a CLI run of the same definition.
type SubmitRequest struct {
	// Tenant selects the namespace (its own database file).
	Tenant string `json:"tenant"`
	// Campaign is the full campaign definition (the CampaignData row).
	Campaign *campaign.Campaign `json:"campaign"`
	// TargetKind configures the target system server-side when the
	// tenant database does not hold it yet: any registered target kind
	// or alias — scifi, swifi, pinlevel, proc, ... (default scifi).
	// ImageBytes sizes swifi workload images.
	TargetKind string `json:"targetKind,omitempty"`
	ImageBytes int    `json:"imageBytes,omitempty"`
	// TargetParams carries target-specific key=value configuration
	// (e.g. "victim" for proc targets).
	TargetParams map[string]string `json:"targetParams,omitempty"`
	// Technique selects the injection algorithm: scifi,
	// swifi-preruntime, swifi-runtime, pin-level (default: the target
	// kind's own algorithm).
	Technique string `json:"technique,omitempty"`
	// Boards caps this campaign's parallelism on the shared fleet
	// (default 1).
	Boards int `json:"boards,omitempty"`
	// Checkpoint is the durable-cursor interval in experiments
	// (default core.DefaultCheckpointInterval; -1 disables).
	Checkpoint int `json:"checkpoint,omitempty"`
	// NoForward disables checkpoint fast-forwarding.
	NoForward bool `json:"noForward,omitempty"`
	// Retry policy knobs (both zero = legacy fail-fast semantics).
	MaxRetries            int `json:"maxRetries,omitempty"`
	BoardFailureThreshold int `json:"boardFailureThreshold,omitempty"`
	// Shards above zero runs the campaign through the sharded path,
	// partitioned into that many ranges. Zero inherits the daemon's
	// -shards default (still zero = solo execution).
	Shards int `json:"shards,omitempty"`
	// ExternalWorkers leaves execution to `goofi shard-worker`
	// processes attaching over HTTP instead of spawning in-process
	// workers, one per shard.
	ExternalWorkers bool `json:"externalWorkers,omitempty"`
}

// normalize fills the defaulted fields in place. Either of TargetKind
// and Technique alone is enough: a bare technique selects the
// like-named target (the historical API contract), a bare target kind
// runs its default algorithm, and both empty means scifi.
func (sr *SubmitRequest) normalize() {
	if sr.TargetKind == "" {
		sr.TargetKind = sr.Technique
	}
	if sr.TargetKind == "" {
		sr.TargetKind = "scifi"
	}
	if info, ok := core.LookupTarget(sr.TargetKind); ok {
		sr.TargetKind = info.Kind // canonicalize aliases
		if sr.Technique == "" {
			sr.Technique = info.Algorithm
		}
	}
	if sr.ImageBytes <= 0 {
		sr.ImageBytes = 4096
	}
	if sr.Boards <= 0 {
		sr.Boards = 1
	}
	if sr.Checkpoint == 0 {
		sr.Checkpoint = core.DefaultCheckpointInterval
	}
	if sr.Campaign != nil {
		// The CLI resolves built-in workloads by name and defaults the
		// log mode; a JSON submission gets the same ergonomics.
		if sr.Campaign.Workload.Source == "" {
			if spec, ok := workload.All()[sr.Campaign.Workload.Name]; ok {
				sr.Campaign.Workload = spec
			}
		}
		if sr.Campaign.LogMode == "" {
			sr.Campaign.LogMode = campaign.LogNormal
		}
	}
}

// validate rejects a submission before any state is created.
func (sr *SubmitRequest) validate() error {
	if !campaign.ValidTenant(sr.Tenant) {
		return fmt.Errorf("invalid tenant name %q", sr.Tenant)
	}
	if sr.Campaign == nil {
		return fmt.Errorf("submission has no campaign definition")
	}
	if err := sr.Campaign.Validate(); err != nil {
		return err
	}
	if _, ok := core.Algorithms()[sr.Technique]; !ok {
		return fmt.Errorf("unknown technique %q", sr.Technique)
	}
	if _, ok := core.LookupTarget(sr.TargetKind); !ok {
		return fmt.Errorf("unknown target kind %q", sr.TargetKind)
	}
	if sr.Shards < 0 {
		return fmt.Errorf("negative shard count %d", sr.Shards)
	}
	return nil
}

// targetConfig folds the request's target knobs into a registry config.
func (sr *SubmitRequest) targetConfig() core.TargetConfig {
	params := make(map[string]string, len(sr.TargetParams)+1)
	for k, v := range sr.TargetParams {
		params[k] = v
	}
	if _, ok := params["image-bytes"]; !ok {
		params["image-bytes"] = strconv.Itoa(sr.ImageBytes)
	}
	return core.TargetConfig{Params: params}
}

// targetData builds the TargetSystemData for the request's target kind.
func (sr *SubmitRequest) targetData() (*campaign.TargetSystemData, error) {
	info, ok := core.LookupTarget(sr.TargetKind)
	if !ok {
		return nil, fmt.Errorf("unknown target kind %q", sr.TargetKind)
	}
	return info.SystemData(sr.Campaign.TargetName, sr.targetConfig())
}

// factory builds fresh target systems from the registry — the same
// construction path as the goofi CLI. validate has already confirmed
// the kind exists; a construction failure afterwards is a programming
// error the runner's recovery layer converts to a wedge.
func (sr *SubmitRequest) factory() func() core.TargetSystem {
	info, _ := core.LookupTarget(sr.TargetKind)
	cfg := sr.targetConfig()
	return func() core.TargetSystem {
		ts, err := info.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("target %q factory: %v", info.Kind, err))
		}
		return ts
	}
}

// Job lifecycle states. Pending and running jobs become pending again
// on a daemon restart (recovery resumes them); done, failed and
// cancelled are terminal.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StatePaused    = "paused"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one submitted campaign: the durable spec plus the live runner
// state while it executes.
type job struct {
	spec    SubmitRequest
	recover bool // re-enqueued at boot: resume from the durable cursor

	mu        sync.Mutex
	state     string
	errMsg    string
	summary   *core.Summary
	runner    *core.Runner       // solo path
	coord     *shard.Coordinator // sharded path
	shardStop func()             // stops a sharded run's workers and wait loop
	prog      *telemetry.Progress
	cancelled bool // user cancel (vs. daemon shutdown stop)
}

// stopWork halts whichever execution path the job is on. Callers hold
// j.mu.
func (j *job) stopWork() {
	if j.runner != nil {
		j.runner.Stop()
	}
	if j.shardStop != nil {
		j.shardStop()
	}
}

func (j *job) key() string { return jobKey(j.spec.Tenant, j.spec.Campaign.Name) }

func jobKey(tenant, name string) string { return tenant + "/" + name }

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
}

// snapshot returns the job's API status view.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		Tenant:   j.spec.Tenant,
		Campaign: j.spec.Campaign.Name,
		State:    j.state,
		Error:    j.errMsg,
		Summary:  j.summary,
	}
	if j.prog != nil {
		s := j.prog.Snapshot()
		st.Progress = &s
	}
	return st
}

// Durable job table, one per tenant database: the daemon's boot
// recovery re-enqueues every row still marked pending.
const jobsDDL = `CREATE TABLE IF NOT EXISTS ServerJob (
		campaignName TEXT PRIMARY KEY,
		spec         BLOB NOT NULL,
		state        TEXT NOT NULL
	)`

func ensureJobTable(db *sqldb.DB) error {
	_, err := db.Exec(jobsDDL)
	return err
}

// putJobRow inserts or replaces the durable job row and raises a
// durability barrier, so an accepted submission survives a crash.
func putJobRow(db *sqldb.DB, spec *SubmitRequest, state string) error {
	blob, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("server: marshal job spec: %w", err)
	}
	name := spec.Campaign.Name
	n, err := db.Exec(`UPDATE ServerJob SET spec = ?, state = ? WHERE campaignName = ?`,
		sqldb.Blob(blob), sqldb.Text(state), sqldb.Text(name))
	if err != nil {
		return err
	}
	if n == 0 {
		if _, err := db.Exec(`INSERT INTO ServerJob VALUES (?, ?, ?)`,
			sqldb.Text(name), sqldb.Blob(blob), sqldb.Text(state)); err != nil {
			return err
		}
	}
	return db.Barrier()
}

func setJobRowState(db *sqldb.DB, name, state string) error {
	if _, err := db.Exec(`UPDATE ServerJob SET state = ? WHERE campaignName = ?`,
		sqldb.Text(state), sqldb.Text(name)); err != nil {
		return err
	}
	return db.Barrier()
}

// pendingJobRows loads the specs of every non-terminal job in a tenant
// database.
func pendingJobRows(db *sqldb.DB) ([]*SubmitRequest, error) {
	if err := ensureJobTable(db); err != nil {
		return nil, err
	}
	r, err := db.Query(`SELECT spec FROM ServerJob WHERE state = ?`, sqldb.Text(StatePending))
	if err != nil {
		return nil, err
	}
	var out []*SubmitRequest
	for _, row := range r.Rows {
		var spec SubmitRequest
		if err := json.Unmarshal(row[0].B, &spec); err != nil {
			return nil, fmt.Errorf("server: unmarshal job spec: %w", err)
		}
		out = append(out, &spec)
	}
	return out, nil
}

// execute runs one campaign end to end, mirroring `goofi run` (and
// `goofi resume` for recovered jobs) exactly: same sink, same option
// set, same fresh-run deletes, same teardown order. That parity is what
// the byte-identity differential tests pin.
func (s *Server) execute(ctx context.Context, j *job) {
	spec := &j.spec
	name := spec.Campaign.Name
	// A queued job can be cancelled before it ever starts.
	j.mu.Lock()
	if j.cancelled {
		j.state = StateCancelled
		j.mu.Unlock()
		s.markDurable(name, spec.Tenant, StateCancelled)
		return
	}
	j.mu.Unlock()
	if spec.Shards > 0 {
		s.executeSharded(ctx, j)
		return
	}
	fail := func(err error) {
		j.setState(StateFailed, err.Error())
		s.markDurable(name, spec.Tenant, StateFailed)
	}
	st, db, release, err := s.tenants.Acquire(spec.Tenant)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	camp, err := st.GetCampaign(name)
	if err != nil {
		fail(err)
		return
	}
	tsd, err := st.GetTargetSystem(camp.TargetName)
	if err != nil {
		fail(err)
		return
	}
	alg := core.Algorithms()[spec.Technique]
	factory := spec.factory()

	// A recovered job resumes from whatever the interrupted run made
	// durable; a fresh submission starts from a clean slate.
	var resume *campaign.Checkpoint
	if j.recover {
		cp, err := st.RecoverCursor(name)
		if err != nil {
			fail(err)
			return
		}
		if cp.Reference || len(cp.Completed) > 0 {
			resume = cp
		}
	}

	sink := campaign.NewBatchingSink(st, 0)
	defer sink.Close()
	prog := telemetry.NewProgress(s.fleet.Capacity())
	tr := telemetry.NewTracer()
	opts := []core.RunnerOption{
		core.WithSink(sink),
		core.WithBoards(spec.Boards, factory),
		core.WithFleet(s.fleet),
		core.WithTelemetry(tr, prog),
	}
	if spec.Checkpoint > 0 {
		opts = append(opts, core.WithCheckpoints(spec.Checkpoint))
	}
	if spec.NoForward {
		opts = append(opts, core.WithForwarding(core.ForwardConfig{Disabled: true}))
	}
	if spec.MaxRetries > 0 || spec.BoardFailureThreshold > 0 {
		opts = append(opts, core.WithRetryPolicy(core.RetryPolicy{
			MaxRetries:            spec.MaxRetries,
			BoardFailureThreshold: spec.BoardFailureThreshold,
		}))
	}
	if resume != nil {
		opts = append(opts, core.WithResume(resume))
	}
	r, err := core.NewRunner(factory(), alg, camp, tsd, opts...)
	if err != nil {
		fail(err)
		return
	}
	j.mu.Lock()
	j.runner = r
	j.prog = prog
	j.state = StateRunning
	if j.cancelled {
		// Cancel raced the startup: the handler had no runner to stop.
		r.Stop()
	}
	j.mu.Unlock()

	resumed := 0
	if resume != nil {
		resumed = len(resume.Completed)
	} else {
		// Fresh run: previous results, phase spans, and any stale
		// cursor go — exactly what `goofi run` deletes.
		if err := st.DeleteCheckpoint(name); err != nil {
			fail(err)
			return
		}
		if err := st.DeleteExperiments(name); err != nil {
			fail(err)
			return
		}
		if err := st.DeleteTelemetry(name); err != nil {
			fail(err)
			return
		}
	}

	sum, runErr := r.Run(ctx)
	j.mu.Lock()
	j.summary = sum
	cancelled := j.cancelled
	j.mu.Unlock()

	if ctx.Err() != nil {
		// Killed (crash simulation or hard daemon stop): leave the
		// durable state exactly as the interrupted run left it — the
		// pending job row plus the WAL — for recovery on the next boot.
		j.setState(StatePending, "")
		return
	}
	if runErr != nil {
		fail(runErr)
		return
	}
	// Clean teardown in `goofi run` order: drain the sink, persist the
	// phase spans, clear the cursor of a complete campaign, compact.
	if err := sink.Close(); err != nil {
		fail(err)
		return
	}
	if tr.Len() > 0 {
		if err := st.LogTelemetry(name, tr.Drain()); err != nil {
			fail(err)
			return
		}
	}
	total := resumed + sum.Experiments
	complete := total >= camp.NumExperiments
	if complete {
		if err := st.DeleteCheckpoint(name); err != nil {
			fail(err)
			return
		}
	}
	if err := db.Checkpoint(); err != nil {
		fail(err)
		return
	}
	switch {
	case cancelled:
		j.setState(StateCancelled, "")
		s.markDurable(name, spec.Tenant, StateCancelled)
	case complete:
		j.setState(StateDone, "")
		s.markDurable(name, spec.Tenant, StateDone)
	default:
		// Stopped short without a user cancel: the daemon is shutting
		// down. The durable row stays pending so the next boot resumes.
		j.setState(StatePending, "")
	}
}

// markDurable best-effort updates the tenant's job row; the in-memory
// state already reflects the outcome.
func (s *Server) markDurable(name, tenant, state string) {
	_, db, release, err := s.tenants.Acquire(tenant)
	if err != nil {
		return
	}
	defer release()
	_ = setJobRowState(db, name, state)
}
