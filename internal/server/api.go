package server

// The campaign-lifecycle HTTP API plus the merged telemetry endpoints.
// Everything speaks JSON; errors come back as {"error": "..."} with a
// meaningful status code (400 bad plan, 404 unknown campaign, 409 bad
// state transition, 429 queue full).

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path"
	"sort"
	"strings"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/shard"
	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
)

// JobStatus is the API view of one submitted campaign.
type JobStatus struct {
	Tenant   string                      `json:"tenant"`
	Campaign string                      `json:"campaign"`
	State    string                      `json:"state"`
	Error    string                      `json:"error,omitempty"`
	Summary  *core.Summary               `json:"summary,omitempty"`
	Progress *telemetry.ProgressSnapshot `json:"progress,omitempty"`
}

// ResultsResponse carries the rendered dependability report and,
// on request (?records=1), the raw experiment records.
type ResultsResponse struct {
	Tenant   string                       `json:"tenant"`
	Campaign string                       `json:"campaign"`
	State    string                       `json:"state"`
	Report   string                       `json:"report"`
	Records  []*campaign.ExperimentRecord `json:"records,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{tenant}/{name}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/campaigns/{tenant}/{name}/pause", s.handleControl)
	mux.HandleFunc("POST /api/v1/campaigns/{tenant}/{name}/resume", s.handleControl)
	mux.HandleFunc("POST /api/v1/campaigns/{tenant}/{name}/cancel", s.handleControl)
	mux.HandleFunc("GET /api/v1/campaigns/{tenant}/{name}/results", s.handleResults)

	// Shard protocol: external `goofi shard-worker` processes register,
	// lease ranges of a sharded campaign, prove liveness, and report
	// records. All four calls sit behind the shared-token gate.
	mux.HandleFunc("POST /api/v1/shards/{tenant}/{name}/hello", s.shardAuth(s.handleShardHello))
	mux.HandleFunc("POST /api/v1/shards/{tenant}/{name}/lease", s.shardAuth(s.handleShardLease))
	mux.HandleFunc("POST /api/v1/shards/{tenant}/{name}/heartbeat", s.shardAuth(s.handleShardHeartbeat))
	mux.HandleFunc("POST /api/v1/shards/{tenant}/{name}/report", s.shardAuth(s.handleShardReport))

	// The PR 5 introspection endpoints, merged into the daemon so one
	// listener serves both the API and the telemetry.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.Default.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad submission: %v", err)
		return
	}
	req.normalize()
	if req.Shards == 0 {
		// Inherit the daemon-wide scale-out default; the persisted spec
		// carries the resolved count so recovery reruns the same way.
		req.Shards = s.cfg.DefaultShards
	}
	if err := req.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad submission: %v", err)
		return
	}
	// submitMu serializes submissions so the duplicate check, the
	// campaign rows, and the queue admission act as one step.
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	prev := s.jobs[jobKey(req.Tenant, req.Campaign.Name)]
	s.mu.Unlock()
	if closed {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if prev != nil {
		switch prev.snapshot().State {
		case StateDone, StateFailed, StateCancelled:
		default:
			writeErr(w, http.StatusConflict, "campaign %s/%s already queued or running",
				req.Tenant, req.Campaign.Name)
			return
		}
	}
	// Persist the definition and the pending job row first: an accepted
	// submission must survive a crash before the 202 goes out.
	st, db, release, err := s.tenants.Acquire(req.Tenant)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer release()
	tsd, err := req.targetData()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "configure target: %v", err)
		return
	}
	if err := st.PutTargetSystem(tsd); err != nil {
		writeErr(w, http.StatusInternalServerError, "configure target: %v", err)
		return
	}
	if err := st.PutCampaign(req.Campaign); err != nil {
		writeErr(w, http.StatusBadRequest, "set up campaign: %v", err)
		return
	}
	if err := ensureJobTable(db); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := putJobRow(db, &req, StatePending); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	j := &job{spec: req, state: StatePending}
	if err := s.enqueue(j); err != nil {
		// Roll the durable row back so a rejected submission is not
		// resurrected on the next boot.
		_, _ = db.Exec(`DELETE FROM ServerJob WHERE campaignName = ?`,
			sqldb.Text(req.Campaign.Name))
		switch err {
		case errQueueFull:
			writeErr(w, http.StatusTooManyRequests, "campaign queue full, retry later")
		case errDuplicate:
			writeErr(w, http.StatusConflict, "campaign %s/%s already queued or running",
				req.Tenant, req.Campaign.Name)
		default:
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobList()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Tenant != out[k].Tenant {
			return out[i].Tenant < out[k].Tenant
		}
		return out[i].Campaign < out[k].Campaign
	})
	writeJSON(w, http.StatusOK, out)
}

// durableState reads a job's state straight from the tenant database
// for campaigns no live job tracks (finished before a restart). The
// bool reports whether the job row exists; the tenant database is never
// created by the lookup.
func (s *Server) durableState(tenant, name string) (string, bool) {
	if !campaign.ValidTenant(tenant) {
		return "", false
	}
	path := s.tenants.Path(tenant)
	if _, err := os.Stat(path); err != nil {
		if _, err := os.Stat(path + ".wal"); err != nil {
			return "", false
		}
	}
	_, db, release, err := s.tenants.Acquire(tenant)
	if err != nil {
		return "", false
	}
	defer release()
	if err := ensureJobTable(db); err != nil {
		return "", false
	}
	res, err := db.Query(`SELECT state FROM ServerJob WHERE campaignName = ?`, sqldb.Text(name))
	if err != nil || len(res.Rows) == 0 {
		return "", false
	}
	return res.Rows[0][0].S, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	if j := s.lookup(tenant, name); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	if state, ok := s.durableState(tenant, name); ok {
		writeJSON(w, http.StatusOK, JobStatus{Tenant: tenant, Campaign: name, State: state})
		return
	}
	writeErr(w, http.StatusNotFound, "no campaign %s/%s", tenant, name)
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	action := path.Base(r.URL.Path) // "pause", "resume", "cancel"
	j := s.lookup(tenant, name)
	if j == nil {
		writeErr(w, http.StatusNotFound, "no campaign %s/%s", tenant, name)
		return
	}
	j.mu.Lock()
	var err error
	switch action {
	case "pause":
		if j.state == StateRunning && j.runner != nil {
			j.runner.Pause()
			j.state = StatePaused
		} else {
			err = fmt.Errorf("cannot pause a %s campaign", j.state)
		}
	case "resume":
		if j.state == StatePaused {
			j.runner.Resume()
			j.state = StateRunning
		} else {
			err = fmt.Errorf("cannot resume a %s campaign", j.state)
		}
	case "cancel":
		switch j.state {
		case StatePending:
			// Not started yet: the consumer will see the flag and retire
			// the job without running it.
			j.cancelled = true
		case StateRunning, StatePaused:
			j.cancelled = true
			j.stopWork()
		default:
			err = fmt.Errorf("cannot cancel a %s campaign", j.state)
		}
	}
	j.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	var state string
	if j := s.lookup(tenant, name); j != nil {
		state = j.snapshot().State
	} else if ds, ok := s.durableState(tenant, name); ok {
		state = ds
	} else {
		writeErr(w, http.StatusNotFound, "no campaign %s/%s", tenant, name)
		return
	}
	if state != StateDone && state != StateCancelled {
		writeErr(w, http.StatusConflict, "campaign %s/%s has no results yet (state %s)",
			tenant, name, state)
		return
	}
	st, _, release, err := s.tenants.Acquire(tenant)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer release()
	rep, err := analysis.AnalyzeAndStore(st, name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "analyze: %v", err)
		return
	}
	resp := ResultsResponse{Tenant: tenant, Campaign: name, State: state, Report: rep.Render()}
	if r.URL.Query().Get("records") == "1" {
		recs, err := st.Experiments(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Records = recs
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardAuth gates the shard protocol behind the daemon's shared worker
// token. With no token configured every worker is welcome (single-host
// deployments). With one, the comparison is constant-time and a miss is
// 401 — which the shard client maps to the terminal ErrUnauthorized, so
// a misconfigured worker exits instead of hammering the daemon, and an
// in-flight campaign served by authorized workers never notices.
func (s *Server) shardAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.ShardToken != "" {
			token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.cfg.ShardToken)) != 1 {
				writeErr(w, http.StatusUnauthorized, "shard worker not authorized")
				return
			}
		}
		next(w, r)
	}
}

func (s *Server) handleShardHello(w http.ResponseWriter, r *http.Request) {
	coord := s.shardCoord(w, r)
	if coord == nil {
		return
	}
	var req shard.HelloRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad hello: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, coord.Hello(req))
}

// shardCoord resolves the live coordinator of a sharded job, or answers
// the request itself: 404 when the daemon tracks no such job (a worker
// knocking across a restart gap keeps retrying), 409 when the job is not
// on the sharded path or not running yet.
func (s *Server) shardCoord(w http.ResponseWriter, r *http.Request) *shard.Coordinator {
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	j := s.lookup(tenant, name)
	if j == nil {
		writeErr(w, http.StatusNotFound, "no campaign %s/%s", tenant, name)
		return nil
	}
	j.mu.Lock()
	coord := j.coord
	j.mu.Unlock()
	if coord == nil {
		writeErr(w, http.StatusConflict, "campaign %s/%s is not serving shards", tenant, name)
		return nil
	}
	return coord
}

func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	coord := s.shardCoord(w, r)
	if coord == nil {
		return
	}
	var req shard.LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, coord.Lease(req))
}

func (s *Server) handleShardHeartbeat(w http.ResponseWriter, r *http.Request) {
	coord := s.shardCoord(w, r)
	if coord == nil {
		return
	}
	var req shard.HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	if err := coord.Heartbeat(req); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleShardReport(w http.ResponseWriter, r *http.Request) {
	coord := s.shardCoord(w, r)
	if coord == nil {
		return
	}
	// Reports carry record batches; give them real headroom.
	var req shard.ReportRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad report: %v", err)
		return
	}
	resp, err := coord.Report(req)
	if err == shard.ErrBadLease {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProgress keeps the PR 5 contract: with ?tenant=&campaign= it
// returns that campaign's ProgressSnapshot (the same shape the
// standalone telemetry server produced); with no arguments it returns a
// map of every tracked job's snapshot keyed tenant/campaign.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.URL.Query().Get("tenant"), r.URL.Query().Get("campaign")
	if tenant != "" || name != "" {
		j := s.lookup(tenant, name)
		if j == nil {
			writeErr(w, http.StatusNotFound, "no campaign %s/%s", tenant, name)
			return
		}
		j.mu.Lock()
		prog := j.prog
		j.mu.Unlock()
		if prog == nil {
			writeErr(w, http.StatusConflict, "campaign %s/%s has not started", tenant, name)
			return
		}
		writeJSON(w, http.StatusOK, prog.Snapshot())
		return
	}
	out := make(map[string]telemetry.ProgressSnapshot)
	for _, j := range s.jobList() {
		j.mu.Lock()
		prog := j.prog
		j.mu.Unlock()
		if prog != nil {
			out[j.key()] = prog.Snapshot()
		}
	}
	writeJSON(w, http.StatusOK, out)
}
