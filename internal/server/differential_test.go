package server

// The PR's correctness pin: a campaign submitted to goofid must produce
// LoggedSystemState records and an analysis report byte-identical to
// the same campaign run through the `goofi run` code path — alone, with
// concurrent tenants contending for the shared fleet, and across a
// daemon crash and restart.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
)

// soloRun executes camp exactly the way `goofi run` does — own database,
// own boards, no daemon — and returns the store holding the results.
func soloRun(t *testing.T, camp *campaign.Campaign, boards int) *campaign.Store {
	t.Helper()
	db, err := sqldb.OpenAt(filepath.Join(t.TempDir(), "solo.db"), sqldb.SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData(camp.TargetName)
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	factory := func() core.TargetSystem { return scifi.New(thor.DefaultConfig()) }
	sink := campaign.NewBatchingSink(st, 0)
	r, err := core.NewRunner(factory(), core.Algorithms()["scifi"], camp, tsd,
		core.WithSink(sink),
		core.WithBoards(boards, factory),
		core.WithCheckpoints(core.DefaultCheckpointInterval))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteCheckpoint(camp.Name); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return st
}

// recordBytes renders every end-of-experiment record of a campaign to
// canonical JSON, in sequence order.
func recordBytes(t *testing.T, st *campaign.Store, name string) []string {
	t.Helper()
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, rec := range recs {
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(blob)
	}
	return out
}

func reportText(t *testing.T, st *campaign.Store, name string) string {
	t.Helper()
	rep, err := analysis.AnalyzeAndStore(st, name)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Render()
}

// assertIdentical fails unless the tenant's records and report match the
// solo run byte for byte.
func assertIdentical(t *testing.T, s *Server, tenant, name string, wantRecs []string, wantReport string) {
	t.Helper()
	st, _, release, err := s.tenants.Acquire(tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	got := recordBytes(t, st, name)
	if len(got) != len(wantRecs) {
		t.Fatalf("tenant %s: %d records, solo run has %d", tenant, len(got), len(wantRecs))
	}
	for i := range got {
		if got[i] != wantRecs[i] {
			t.Fatalf("tenant %s: record %d differs\n daemon: %s\n   solo: %s", tenant, i, got[i], wantRecs[i])
		}
	}
	if gotRep := reportText(t, st, name); gotRep != wantReport {
		t.Fatalf("tenant %s: analysis report differs\n daemon:\n%s\n solo:\n%s", tenant, gotRep, wantReport)
	}
}

func TestDifferentialSolo(t *testing.T) {
	camp := testCampaign("diff", 40)
	solo := soloRun(t, camp, 2)
	wantRecs := recordBytes(t, solo, "diff")
	wantReport := reportText(t, solo, "diff")

	s, ts := newTestServer(t, Config{Boards: 2, MaxConcurrent: 1})
	defer shutdownServer(t, s)
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: camp, Boards: 2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if st := pollState(t, ts.URL, "alice", "diff", StateDone); st.State != StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	assertIdentical(t, s, "alice", "diff", wantRecs, wantReport)
}

func TestDifferentialConcurrentTenants(t *testing.T) {
	camp := testCampaign("diff", 40)
	solo := soloRun(t, camp, 2)
	wantRecs := recordBytes(t, solo, "diff")
	wantReport := reportText(t, solo, "diff")

	// Three tenants run the same campaign at once, each asking for two
	// boards from a three-board fleet: the fair-share lease policy has to
	// juggle them, and none of that contention may show in the results.
	s, ts := newTestServer(t, Config{Boards: 3, MaxConcurrent: 3})
	defer shutdownServer(t, s)
	tenants := []string{"alice", "bob", "carol"}
	for _, tenant := range tenants {
		resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", SubmitRequest{
			Tenant: tenant, Campaign: camp, Boards: 2,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %d: %s", tenant, resp.StatusCode, body)
		}
	}
	for _, tenant := range tenants {
		if st := pollState(t, ts.URL, tenant, "diff", StateDone); st.State != StateDone {
			t.Fatalf("%s: state = %s (err %q)", tenant, st.State, st.Error)
		}
	}
	for _, tenant := range tenants {
		assertIdentical(t, s, tenant, "diff", wantRecs, wantReport)
	}
}

func TestDifferentialKillRestart(t *testing.T) {
	// Large enough that the campaign cannot finish in the gap between
	// the progress poll observing Done >= 10 and Kill() landing — if it
	// did, the durable row would read "done" and there would be nothing
	// for the restarted daemon to resume.
	const numExp = 600
	camp := testCampaign("diff", numExp)
	solo := soloRun(t, camp, 2)
	wantRecs := recordBytes(t, solo, "diff")
	wantReport := reportText(t, solo, "diff")

	dir := t.TempDir()
	cfg := Config{DataDir: dir, Boards: 2, MaxConcurrent: 1}
	s1, ts1 := newTestServer(t, cfg)
	// A small checkpoint interval so the durable cursor is mid-campaign
	// when the daemon dies.
	resp, body := postJSON(t, ts1.URL+"/api/v1/campaigns", SubmitRequest{
		Tenant: "alice", Campaign: camp, Boards: 2, Checkpoint: 4,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	// Let it get partway, then pull the plug without any graceful
	// teardown: no sink drain, no checkpoint, no database close.
	url := ts1.URL + "/api/v1/campaigns/alice/diff"
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		getJSON(t, url, &st)
		if st.Progress != nil && st.Progress.Done >= 10 {
			break
		}
		if st.State == StateDone || time.Now().After(deadline) {
			t.Fatalf("campaign finished too fast to kill (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Kill()
	ts1.Close()

	// A fresh daemon on the same data directory replays the WAL, finds
	// the pending job, and resumes it from the durable cursor.
	s2, ts2 := newTestServer(t, cfg)
	defer shutdownServer(t, s2)
	if st := pollState(t, ts2.URL, "alice", "diff", StateDone); st.State != StateDone {
		t.Fatalf("recovered state = %s (err %q)", st.State, st.Error)
	}
	assertIdentical(t, s2, "alice", "diff", wantRecs, wantReport)

	// The resumed run must not have redone everything: the recovered
	// summary covers only the remainder.
	var st JobStatus
	getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/alice/diff", ts2.URL), &st)
	if st.Summary == nil || st.Summary.Experiments >= numExp {
		t.Errorf("recovered summary = %+v, want fewer than %d experiments", st.Summary, numExp)
	}
}
