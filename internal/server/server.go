// Package server is the goofid daemon: a long-running, multi-tenant
// campaign service wrapping the same campaign/core/analysis layers the
// goofi CLI drives. Campaigns are submitted over an HTTP/JSON API, run
// concurrently on one shared board fleet (core.Fleet leases boards
// fairly across them), and live in per-tenant WAL-backed databases
// (campaign.TenantDBs). Because the scheduler draws the full injection
// plan from the campaign seed up front, a campaign's results are
// byte-identical whether it runs alone under `goofi run` or next to
// other tenants under goofid.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/shard"
	"goofi/internal/sqldb"
)

// Config sizes the daemon.
type Config struct {
	// DataDir holds one <tenant>.db (+ WAL) per tenant.
	DataDir string
	// Boards is the shared fleet size campaigns lease from (default 4).
	Boards int
	// MaxConcurrent is how many campaigns run at once (default 2).
	MaxConcurrent int
	// QueueDepth caps campaigns accepted but not yet running; a full
	// queue turns submissions away with 429 (default 8).
	QueueDepth int
	// CompactInterval sweeps idle tenant databases back into their
	// snapshots this often (0 disables the sweeper).
	CompactInterval time.Duration
	// DefaultShards, when above zero, runs every submission that does
	// not pick its own shard count through the sharded path with this
	// many in-process workers (the `goofid -shards` knob).
	DefaultShards int
	// ShardHeartbeat is the lease heartbeat period for sharded
	// campaigns (default shard.DefaultHeartbeat).
	ShardHeartbeat time.Duration
	// ShardLeaseTTL is how long a lease survives without a heartbeat
	// (default 3×ShardHeartbeat). Must be at least two heartbeats — a
	// smaller TTL would let a single delayed beat expire healthy leases,
	// so New rejects it at startup instead of failing every sharded job.
	ShardLeaseTTL time.Duration
	// ShardToken, when set, requires external shard workers to present
	// it as a bearer token on every shard call; mismatches get 401.
	// In-process workers bypass HTTP entirely and are unaffected.
	ShardToken string
}

func (c *Config) setDefaults() {
	if c.Boards <= 0 {
		c.Boards = 4
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
}

// Server owns the fleet, the tenant databases, and the job queue. Build
// one with New, mount Handler on a listener, and Shutdown when done.
type Server struct {
	cfg     Config
	fleet   *core.Fleet
	tenants *campaign.TenantDBs
	mux     *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc
	stopCh  chan struct{} // closed on Shutdown/Kill: stop admitting work

	mu     sync.Mutex
	jobs   map[string]*job
	admit  chan *job
	closed bool

	submitMu sync.Mutex // serializes handleSubmit's persist-then-enqueue

	wg sync.WaitGroup // consumers + compaction sweeper
}

// New builds and starts a server: recovers interrupted jobs from the
// data directory, then begins draining the queue.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if err := validateShardTiming(cfg.ShardHeartbeat, cfg.ShardLeaseTTL); err != nil {
		return nil, err
	}
	tenants, err := campaign.NewTenantDBs(cfg.DataDir, sqldb.SyncBarrier)
	if err != nil {
		return nil, err
	}
	fleet, err := core.NewFleet(cfg.Boards)
	if err != nil {
		tenants.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		fleet:   fleet,
		tenants: tenants,
		baseCtx: ctx,
		cancel:  cancel,
		stopCh:  make(chan struct{}),
		jobs:    make(map[string]*job),
		admit:   make(chan *job, cfg.QueueDepth),
	}
	s.mux = s.routes()
	if err := s.recoverJobs(); err != nil {
		cancel()
		tenants.Close()
		return nil, err
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.consume()
	}
	if cfg.CompactInterval > 0 {
		s.wg.Add(1)
		go s.sweep()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (campaign API plus the
// merged telemetry endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Fleet exposes the shared board fleet (read-side, for status output).
func (s *Server) Fleet() *core.Fleet { return s.fleet }

func (s *Server) consume() {
	defer s.wg.Done()
	for j := range s.admit {
		select {
		case <-s.stopCh:
			// Shutting down: leave the job pending (in memory and in its
			// durable row) for the next boot to resume.
			continue
		default:
		}
		s.execute(s.baseCtx, j)
	}
}

func (s *Server) sweep() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			_, _ = s.tenants.CompactIdle(s.cfg.CompactInterval)
		}
	}
}

// validateShardTiming mirrors the coordinator's TTL/heartbeat floor at
// daemon startup, so a misconfigured deployment fails its boot rather
// than every sharded campaign it accepts.
func validateShardTiming(beat, ttl time.Duration) error {
	if ttl <= 0 {
		return nil // coordinator default: 3×beat, always valid
	}
	if beat <= 0 {
		beat = shard.DefaultHeartbeat
	}
	if ttl < 2*beat {
		return fmt.Errorf("server: shard lease TTL %v < 2 heartbeats of %v — one lost beat would expire healthy leases", ttl, beat)
	}
	return nil
}

var (
	errQueueFull = fmt.Errorf("server: campaign queue full")
	errClosed    = fmt.Errorf("server: shutting down")
	errDuplicate = fmt.Errorf("server: campaign already queued or running")
)

// enqueue admits a job or reports why it cannot run. A key may be
// reused once its previous job reached a terminal state.
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if prev, ok := s.jobs[j.key()]; ok {
		switch prev.snapshot().State {
		case StateDone, StateFailed, StateCancelled:
		default:
			return errDuplicate
		}
	}
	select {
	case s.admit <- j:
		s.jobs[j.key()] = j
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) lookup(tenant, name string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[jobKey(tenant, name)]
}

func (s *Server) jobList() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// markClosed flips the server into its draining state exactly once.
func (s *Server) markClosed() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stopCh)
		close(s.admit)
	}
	s.mu.Unlock()
}

// Shutdown stops the daemon gracefully: no new admissions, running
// campaigns stop at their next durable cursor, queued jobs stay pending
// for the next boot, and every tenant database is checkpointed and
// closed. If ctx expires first the remaining campaigns are cut off hard
// (their WAL still replays on the next boot).
func (s *Server) Shutdown(ctx context.Context) error {
	s.markClosed()
	for _, j := range s.jobList() {
		j.mu.Lock()
		j.stopWork()
		j.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		<-done
	}
	s.cancel()
	return s.tenants.Close()
}

// Kill is the in-process equivalent of kill -9, for crash-recovery
// tests: running campaigns are aborted mid-flight and the tenant
// databases are abandoned without a checkpoint or close, leaving only
// what the WAL already made durable. A new server on the same DataDir
// must replay the logs and resume every pending job.
func (s *Server) Kill() {
	s.markClosed()
	s.cancel()
	s.wg.Wait()
}
