// Package trigger implements fault triggers: the conditions that decide
// *when* a fault is injected into a running workload. The paper's current
// tool uses breakpoints set via the scan chains (§3.3) and lists additional
// triggers as future work (§4): access of data values, execution of branch
// instructions or subprogram calls, task switches, and real-time clock
// times. All of them are implemented here for the THOR-S target.
package trigger

import (
	"fmt"

	"goofi/internal/thor"
)

// Spec is the serializable trigger selection stored in the campaign data.
type Spec struct {
	// Kind selects the trigger type: "cycle", "instret", "breakpoint",
	// "data-access", "branch", "call", "task-switch" or "rtc".
	Kind string `json:"kind"`
	// Cycle is the target cycle for "cycle" triggers.
	Cycle uint64 `json:"cycle,omitempty"`
	// Count is the instruction count for "instret" triggers.
	Count uint64 `json:"count,omitempty"`
	// Addr is the code address ("breakpoint") or data address
	// ("data-access", "task-switch").
	Addr uint32 `json:"addr,omitempty"`
	// Occurrence selects the n-th occurrence (1-based; 0 means first)
	// for breakpoint, data-access, branch, call and task-switch triggers.
	Occurrence int `json:"occurrence,omitempty"`
	// Write restricts "data-access" to stores (otherwise any access).
	Write bool `json:"write,omitempty"`
	// Period is the real-time-clock period in cycles for "rtc"; the
	// trigger fires at the Occurrence-th tick.
	Period uint64 `json:"period,omitempty"`
}

// CycleMonotonic reports whether the trigger's firing decision is a pure
// monotonic function of the cycle or instruction counter: once the
// counter passes the threshold the trigger is fired, and it keeps no
// occurrence state of its own. Only such triggers are safe to fast-forward
// with checkpoint restore — an occurrence-counting trigger (breakpoint,
// data-access, branch, call, task-switch) depends on the whole execution
// prefix, which a restored run would skip.
func (s Spec) CycleMonotonic() bool {
	switch s.Kind {
	case "cycle", "instret", "rtc":
		return true
	}
	return false
}

// ForwardPoint returns the counter threshold at which a cycle-monotonic
// trigger fires, and which counter it watches (byInstret selects the
// instruction counter). ok is false for triggers that are not
// cycle-monotonic; those cannot be forwarded.
func (s Spec) ForwardPoint() (at uint64, byInstret, ok bool) {
	switch s.Kind {
	case "cycle":
		return s.Cycle, false, true
	case "rtc":
		occ := s.Occurrence
		if occ <= 0 {
			occ = 1
		}
		return s.Period * uint64(occ), false, true
	case "instret":
		return s.Count, true, true
	}
	return 0, false, false
}

// Trigger decides when the injection point has been reached. Fired is
// evaluated before each instruction executes; triggers may keep occurrence
// state and must be Reset between experiments.
type Trigger interface {
	Name() string
	Reset()
	Fired(c *thor.CPU) bool
}

// Build constructs the trigger described by the spec.
func (s Spec) Build() (Trigger, error) {
	occ := s.Occurrence
	if occ <= 0 {
		occ = 1
	}
	switch s.Kind {
	case "cycle":
		return &cycleTrigger{at: s.Cycle}, nil
	case "instret":
		return &instretTrigger{at: s.Count}, nil
	case "breakpoint":
		return &breakpointTrigger{addr: s.Addr, occ: occ}, nil
	case "data-access":
		return &dataAccessTrigger{addr: s.Addr, writeOnly: s.Write, occ: occ}, nil
	case "task-switch":
		// A task switch is observable as a write to the scheduler's
		// current-task variable.
		return &dataAccessTrigger{addr: s.Addr, writeOnly: true, occ: occ, name: "task-switch"}, nil
	case "branch":
		return &opClassTrigger{class: "branch", match: thor.Opcode.IsBranch, occ: occ}, nil
	case "call":
		return &opClassTrigger{class: "call", match: thor.Opcode.IsCall, occ: occ}, nil
	case "rtc":
		if s.Period == 0 {
			return nil, fmt.Errorf("trigger: rtc trigger needs a period")
		}
		return &cycleTrigger{at: s.Period * uint64(occ), name: "rtc"}, nil
	default:
		return nil, fmt.Errorf("trigger: unknown kind %q", s.Kind)
	}
}

// RunUntil executes the CPU until the trigger fires (returning true with
// the CPU stopped *before* the triggering instruction), the CPU stops for
// another reason, or the cycle budget is exhausted.
func RunUntil(c *thor.CPU, tr Trigger, budget uint64) (fired bool, st thor.Status) {
	start := c.Cycle()
	for {
		if st := c.Status(); st != thor.StatusRunning {
			return false, st
		}
		if tr.Fired(c) {
			return true, c.Status()
		}
		if c.Cycle()-start >= budget {
			return false, c.Status()
		}
		c.Step()
	}
}

// RunUntilFast is RunUntil with batched fast-path execution. It applies
// only to cycle-monotonic triggers (spec.ForwardPoint ok): for those,
// Fired is a pure, side-effect-free threshold compare on the cycle or
// instruction counter, so between the current counter value and the
// threshold the per-instruction Fired/budget checks provably evaluate
// to false and can be skipped — the CPU bursts through that span with
// thor.StepBurst. Near the threshold (and for every non-monotonic
// trigger) execution is cycle-accurate RunUntil, so firing positions,
// statuses, and all architectural state are byte-identical.
//
// The equivalence argument, precisely: before every instruction inside
// a burst of chunk = min(at-counter, budget-used) cycles, (a) the CPU
// is running (StepBurst's loop condition), (b) the counter is strictly
// below at — for cycle triggers because cycle < burstStart+chunk ≤ at;
// for instret triggers because each instruction retires 1 instret and
// costs ≥1 cycle, so instret < instret0+chunk = at while the cycle
// budget lasts — hence Fired would return false, and (c) cycles used
// stay strictly below budget because chunk was capped by the remainder.
// All three skipped checks are therefore no-ops at every skipped point.
func RunUntilFast(c *thor.CPU, tr Trigger, spec Spec, budget uint64) (fired bool, st thor.Status) {
	at, byInstret, ok := spec.ForwardPoint()
	if !ok {
		return RunUntil(c, tr, budget)
	}
	start := c.Cycle()
	for {
		if st := c.Status(); st != thor.StatusRunning {
			return false, st
		}
		if tr.Fired(c) {
			return true, c.Status()
		}
		used := c.Cycle() - start
		if used >= budget {
			return false, c.Status()
		}
		counter := c.Cycle()
		if byInstret {
			counter = c.Instret()
		}
		if counter >= at {
			// The spec says the trigger has passed its threshold but
			// Fired disagreed (mismatched tr/spec pair): stay safe and
			// cycle-accurate.
			c.Step()
			continue
		}
		chunk := at - counter
		if rem := budget - used; chunk > rem {
			chunk = rem
		}
		c.StepBurst(chunk)
	}
}

type cycleTrigger struct {
	at   uint64
	name string
}

func (t *cycleTrigger) Name() string {
	if t.name != "" {
		return fmt.Sprintf("%s@%d", t.name, t.at)
	}
	return fmt.Sprintf("cycle@%d", t.at)
}
func (t *cycleTrigger) Reset()                 {}
func (t *cycleTrigger) Fired(c *thor.CPU) bool { return c.Cycle() >= t.at }

type instretTrigger struct{ at uint64 }

func (t *instretTrigger) Name() string           { return fmt.Sprintf("instret@%d", t.at) }
func (t *instretTrigger) Reset()                 {}
func (t *instretTrigger) Fired(c *thor.CPU) bool { return c.Instret() >= t.at }

type breakpointTrigger struct {
	addr uint32
	occ  int
	hits int
}

func (t *breakpointTrigger) Name() string { return fmt.Sprintf("breakpoint@%#x#%d", t.addr, t.occ) }
func (t *breakpointTrigger) Reset()       { t.hits = 0 }

func (t *breakpointTrigger) Fired(c *thor.CPU) bool {
	if c.PC == t.addr {
		t.hits++
		return t.hits >= t.occ
	}
	return false
}

// nextInstr decodes the instruction the CPU is about to execute, reading
// memory host-side so that cache statistics are not disturbed.
func nextInstr(c *thor.CPU) (thor.Instr, bool) {
	w, err := c.ReadWord32(c.PC)
	if err != nil {
		return thor.Instr{}, false
	}
	return thor.Decode(w), true
}

type dataAccessTrigger struct {
	addr      uint32
	writeOnly bool
	occ       int
	hits      int
	name      string
}

func (t *dataAccessTrigger) Name() string {
	n := t.name
	if n == "" {
		n = "data-access"
	}
	mode := "rw"
	if t.writeOnly {
		mode = "w"
	}
	return fmt.Sprintf("%s@%#x(%s)#%d", n, t.addr, mode, t.occ)
}

func (t *dataAccessTrigger) Reset() { t.hits = 0 }

// Fired computes the effective address of the upcoming instruction and
// matches it against the watched address.
func (t *dataAccessTrigger) Fired(c *thor.CPU) bool {
	in, ok := nextInstr(c)
	if !ok {
		return false
	}
	var ea uint32
	var isWrite bool
	switch in.Op {
	case thor.OpLD:
		ea = c.Regs[in.Rs1] + uint32(in.SImm())
	case thor.OpST:
		ea = c.Regs[in.Rs1] + uint32(in.SImm())
		isWrite = true
	case thor.OpPUSH:
		ea = c.Regs[thor.RegSP] - 4
		isWrite = true
	case thor.OpPOP:
		ea = c.Regs[thor.RegSP]
	default:
		return false
	}
	if ea != t.addr || (t.writeOnly && !isWrite) {
		return false
	}
	t.hits++
	return t.hits >= t.occ
}

type opClassTrigger struct {
	class string
	match func(thor.Opcode) bool
	occ   int
	hits  int
}

func (t *opClassTrigger) Name() string { return fmt.Sprintf("%s#%d", t.class, t.occ) }
func (t *opClassTrigger) Reset()       { t.hits = 0 }

func (t *opClassTrigger) Fired(c *thor.CPU) bool {
	in, ok := nextInstr(c)
	if !ok || !t.match(in.Op) {
		return false
	}
	t.hits++
	return t.hits >= t.occ
}
