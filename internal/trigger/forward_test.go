package trigger

import "testing"

func TestCycleMonotonicKinds(t *testing.T) {
	monotonic := map[string]bool{
		"cycle":       true,
		"instret":     true,
		"rtc":         true,
		"breakpoint":  false,
		"data-access": false,
		"branch":      false,
		"call":        false,
		"task-switch": false,
	}
	for kind, want := range monotonic {
		if got := (Spec{Kind: kind}).CycleMonotonic(); got != want {
			t.Errorf("CycleMonotonic(%q) = %v, want %v", kind, got, want)
		}
	}
}

func TestForwardPoint(t *testing.T) {
	tests := []struct {
		name      string
		spec      Spec
		at        uint64
		byInstret bool
		ok        bool
	}{
		{"cycle", Spec{Kind: "cycle", Cycle: 1234}, 1234, false, true},
		{"instret", Spec{Kind: "instret", Count: 500}, 500, true, true},
		{"rtc-default-occurrence", Spec{Kind: "rtc", Period: 100}, 100, false, true},
		{"rtc-nth-tick", Spec{Kind: "rtc", Period: 100, Occurrence: 7}, 700, false, true},
		{"breakpoint", Spec{Kind: "breakpoint", Addr: 0x40}, 0, false, false},
		{"branch", Spec{Kind: "branch", Occurrence: 3}, 0, false, false},
	}
	for _, tc := range tests {
		at, byInstret, ok := tc.spec.ForwardPoint()
		if at != tc.at || byInstret != tc.byInstret || ok != tc.ok {
			t.Errorf("%s: ForwardPoint() = (%d, %v, %v), want (%d, %v, %v)",
				tc.name, at, byInstret, ok, tc.at, tc.byInstret, tc.ok)
		}
	}
}

// TestForwardPointMatchesBuiltTrigger pins the invariant forwarding rests
// on: for every cycle-monotonic spec, the built trigger fires exactly when
// the watched counter reaches ForwardPoint's threshold.
func TestForwardPointMatchesBuiltTrigger(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: "cycle", Cycle: 64},
		{Kind: "rtc", Period: 32, Occurrence: 2},
	} {
		at, byInstret, ok := spec.ForwardPoint()
		if !ok || byInstret {
			t.Fatalf("%+v: unexpected forward point (%d, %v, %v)", spec, at, byInstret, ok)
		}
		tr, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		ct, isCycle := tr.(*cycleTrigger)
		if !isCycle || ct.at != at {
			t.Errorf("%+v: built trigger %#v does not fire at forward point %d", spec, tr, at)
		}
	}
}
