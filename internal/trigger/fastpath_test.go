package trigger

import (
	"fmt"
	"testing"
)

// TestRunUntilFastDifferential drives RunUntil and RunUntilFast over
// every trigger kind and a spread of thresholds/budgets and requires
// identical firing decisions, statuses, and CPU counters.
func TestRunUntilFastDifferential(t *testing.T) {
	specs := []Spec{
		{Kind: "cycle", Cycle: 1},
		{Kind: "cycle", Cycle: 57},
		{Kind: "cycle", Cycle: 1_000},
		{Kind: "cycle", Cycle: 10_000_000}, // beyond program end
		{Kind: "instret", Count: 1},
		{Kind: "instret", Count: 10},
		{Kind: "instret", Count: 113},
		{Kind: "rtc", Period: 40, Occurrence: 3},
		{Kind: "breakpoint", Addr: 8, Occurrence: 5},  // non-monotonic: fast == plain RunUntil
		{Kind: "data-access", Addr: 0, Occurrence: 2}, // matched lazily against var below
		{Kind: "branch", Occurrence: 7},
		{Kind: "call", Occurrence: 1},
	}
	budgets := []uint64{3, 50, 333, 1_000_000}
	for si, spec := range specs {
		for _, budget := range budgets {
			t.Run(fmt.Sprintf("spec%d/budget%d", si, budget), func(t *testing.T) {
				cSlow, prog := loadCPU(t)
				cFast, _ := loadCPU(t)
				if spec.Kind == "data-access" {
					spec.Addr = prog.MustSymbol("var")
				}
				trSlow := build(t, spec)
				trFast := build(t, spec)
				fired1, st1 := RunUntil(cSlow, trSlow, budget)
				fired2, st2 := RunUntilFast(cFast, trFast, spec, budget)
				if fired1 != fired2 || st1 != st2 {
					t.Fatalf("fired/status (%v,%v) != (%v,%v)", fired1, st1, fired2, st2)
				}
				if cSlow.Cycle() != cFast.Cycle() || cSlow.Instret() != cFast.Instret() {
					t.Fatalf("cycle/instret (%d,%d) != (%d,%d)",
						cSlow.Cycle(), cSlow.Instret(), cFast.Cycle(), cFast.Instret())
				}
				if cSlow.PC != cFast.PC || cSlow.Regs != cFast.Regs {
					t.Fatalf("pc/regs diverged: %#x vs %#x", cSlow.PC, cFast.PC)
				}
				if !cSlow.ScanRead().Equal(cFast.ScanRead()) {
					t.Fatal("scan chains differ")
				}
			})
		}
	}
}

// TestRunUntilFastResumesAcrossBudgets re-runs a trigger wait in many
// small budget slices, the way the campaign scheduler does, and checks
// each slice boundary.
func TestRunUntilFastResumesAcrossBudgets(t *testing.T) {
	spec := Spec{Kind: "cycle", Cycle: 137}
	cSlow, _ := loadCPU(t)
	cFast, _ := loadCPU(t)
	trSlow := build(t, spec)
	trFast := build(t, spec)
	for slice := 0; slice < 40; slice++ {
		fired1, st1 := RunUntil(cSlow, trSlow, 7)
		fired2, st2 := RunUntilFast(cFast, trFast, spec, 7)
		if fired1 != fired2 || st1 != st2 {
			t.Fatalf("slice %d: (%v,%v) != (%v,%v)", slice, fired1, st1, fired2, st2)
		}
		if cSlow.Cycle() != cFast.Cycle() {
			t.Fatalf("slice %d: cycle %d != %d", slice, cSlow.Cycle(), cFast.Cycle())
		}
		if fired1 {
			if cSlow.Cycle() < 137 {
				t.Fatalf("fired early at %d", cSlow.Cycle())
			}
			return
		}
	}
	t.Fatal("trigger never fired across slices")
}
