package trigger

import (
	"strings"
	"testing"

	"goofi/internal/asm"
	"goofi/internal/thor"
)

const loopSrc = `
	ldi r1, 0
	la r2, var
loop:
	ld r3, [r2]       ; data read of var each iteration
	addi r3, r3, 1
	st [r2], r3       ; data write of var
	addi r1, r1, 1
	cmpi r1, 20
	blt loop
	call fin
	halt
fin:
	ret
var:
	.word 0
`

func loadCPU(t *testing.T) (*thor.CPU, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatal(err)
	}
	return c, prog
}

func build(t *testing.T, s Spec) Trigger {
	t.Helper()
	tr, err := s.Build()
	if err != nil {
		t.Fatalf("Build(%+v): %v", s, err)
	}
	return tr
}

func TestCycleTrigger(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "cycle", Cycle: 50})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("cycle trigger never fired")
	}
	if c.Cycle() < 50 {
		t.Errorf("fired at cycle %d, want >= 50", c.Cycle())
	}
	if c.Status() != thor.StatusRunning {
		t.Errorf("status = %v, want running (stopped before instruction)", c.Status())
	}
}

func TestInstretTrigger(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "instret", Count: 10})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired || c.Instret() != 10 {
		t.Errorf("fired=%v at instret=%d, want fired at exactly 10", fired, c.Instret())
	}
}

func TestBreakpointTriggerOccurrences(t *testing.T) {
	c, prog := loadCPU(t)
	loopAddr := prog.MustSymbol("loop")
	tr := build(t, Spec{Kind: "breakpoint", Addr: loopAddr, Occurrence: 3})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("breakpoint trigger never fired")
	}
	if c.PC != loopAddr {
		t.Errorf("PC = %#x, want %#x", c.PC, loopAddr)
	}
	// Third arrival at the loop head: two iterations completed, so the
	// counter variable r1 is 2.
	if c.Regs[1] != 2 {
		t.Errorf("r1 = %d at 3rd loop-head arrival, want 2", c.Regs[1])
	}
}

func TestDataAccessTriggerReadAndWrite(t *testing.T) {
	c, prog := loadCPU(t)
	varAddr := prog.MustSymbol("var")
	tr := build(t, Spec{Kind: "data-access", Addr: varAddr})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("data-access trigger never fired")
	}
	in := thor.Decode(mustWord(t, c, c.PC))
	if in.Op != thor.OpLD {
		t.Errorf("stopped before %v, want the LD", in)
	}

	// Write-only trigger skips the read and stops at the store.
	c2, _ := loadCPU(t)
	tr2 := build(t, Spec{Kind: "data-access", Addr: varAddr, Write: true})
	fired, _ = RunUntil(c2, tr2, 1_000_000)
	if !fired {
		t.Fatal("write trigger never fired")
	}
	in = thor.Decode(mustWord(t, c2, c2.PC))
	if in.Op != thor.OpST {
		t.Errorf("stopped before %v, want the ST", in)
	}
}

func TestTaskSwitchTrigger(t *testing.T) {
	c, prog := loadCPU(t)
	tr := build(t, Spec{Kind: "task-switch", Addr: prog.MustSymbol("var"), Occurrence: 2})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("task-switch trigger never fired")
	}
	if !strings.Contains(tr.Name(), "task-switch") {
		t.Errorf("name = %q", tr.Name())
	}
}

func TestBranchTrigger(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "branch", Occurrence: 2})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("branch trigger never fired")
	}
	in := thor.Decode(mustWord(t, c, c.PC))
	if !in.Op.IsBranch() {
		t.Errorf("stopped before %v, want a branch", in)
	}
	// Second branch: one full loop iteration done.
	if c.Regs[1] != 2 {
		t.Errorf("r1 = %d before 2nd branch, want 2", c.Regs[1])
	}
}

func TestCallTrigger(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "call"})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("call trigger never fired")
	}
	in := thor.Decode(mustWord(t, c, c.PC))
	if in.Op != thor.OpCALL {
		t.Errorf("stopped before %v, want CALL", in)
	}
	// The loop ran to completion before the call.
	if c.Regs[1] != 20 {
		t.Errorf("r1 = %d before call, want 20", c.Regs[1])
	}
}

func TestRTCTrigger(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "rtc", Period: 30, Occurrence: 2})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired || c.Cycle() < 60 {
		t.Errorf("rtc fired=%v at cycle %d, want >= 60", fired, c.Cycle())
	}
}

func TestTriggerNeverFires(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "breakpoint", Addr: 0xFFFC})
	fired, st := RunUntil(c, tr, 1_000_000)
	if fired {
		t.Error("unreachable breakpoint fired")
	}
	if st != thor.StatusHalted {
		t.Errorf("status = %v, want halted", st)
	}
}

func TestRunUntilBudget(t *testing.T) {
	c, _ := loadCPU(t)
	tr := build(t, Spec{Kind: "cycle", Cycle: 1_000_000})
	fired, st := RunUntil(c, tr, 10)
	if fired {
		t.Error("trigger fired within tiny budget")
	}
	if st != thor.StatusRunning {
		t.Errorf("status = %v, want running (budget exhausted)", st)
	}
}

func TestTriggerReset(t *testing.T) {
	c, prog := loadCPU(t)
	tr := build(t, Spec{Kind: "breakpoint", Addr: prog.MustSymbol("loop"), Occurrence: 2})
	fired, _ := RunUntil(c, tr, 1_000_000)
	if !fired {
		t.Fatal("first run did not fire")
	}
	// Fresh CPU, reset trigger: occurrence counting starts over.
	c2, _ := loadCPU(t)
	tr.Reset()
	fired, _ = RunUntil(c2, tr, 1_000_000)
	if !fired {
		t.Fatal("trigger did not fire after Reset")
	}
	if c2.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1 (occurrence state leaked across Reset)", c2.Regs[1])
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := (Spec{Kind: "bogus"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (Spec{Kind: "rtc"}).Build(); err == nil {
		t.Error("rtc without period accepted")
	}
}

func TestTriggerNames(t *testing.T) {
	specs := []Spec{
		{Kind: "cycle", Cycle: 5},
		{Kind: "instret", Count: 5},
		{Kind: "breakpoint", Addr: 16},
		{Kind: "data-access", Addr: 16, Write: true},
		{Kind: "branch"},
		{Kind: "call"},
		{Kind: "rtc", Period: 10},
	}
	for _, s := range specs {
		tr := build(t, s)
		if tr.Name() == "" {
			t.Errorf("empty name for %+v", s)
		}
	}
}

func mustWord(t *testing.T, c *thor.CPU, addr uint32) uint32 {
	t.Helper()
	w, err := c.ReadWord32(addr)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
