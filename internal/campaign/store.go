package campaign

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"goofi/internal/sqldb"
)

// Store persists target systems, campaigns and logged experiments in the
// three-table schema of paper Fig 4, with foreign keys preventing
// inconsistencies: CampaignData references TargetSystemData, and
// LoggedSystemState references CampaignData.
type Store struct {
	db *sqldb.DB
	// insertExp is the prepared single-row LoggedSystemState INSERT —
	// the statement on the storage hot path.
	insertExp *sqldb.Stmt
}

// Schema is the DDL of the GOOFI database (Fig 4). Exposed so tools can
// print it.
var Schema = []string{
	`CREATE TABLE IF NOT EXISTS TargetSystemData (
		targetName   TEXT PRIMARY KEY,
		testCardName TEXT NOT NULL,
		config       BLOB NOT NULL
	)`,
	`CREATE TABLE IF NOT EXISTS CampaignData (
		campaignName TEXT PRIMARY KEY,
		targetName   TEXT NOT NULL,
		testCardName TEXT,
		config       BLOB NOT NULL,
		FOREIGN KEY (targetName) REFERENCES TargetSystemData (targetName)
	)`,
	`CREATE TABLE IF NOT EXISTS LoggedSystemState (
		experimentName   TEXT PRIMARY KEY,
		parentExperiment TEXT,
		campaignName     TEXT NOT NULL,
		step             INTEGER NOT NULL,
		experimentData   BLOB NOT NULL,
		stateVector      BLOB NOT NULL,
		FOREIGN KEY (campaignName) REFERENCES CampaignData (campaignName)
	)`,
	// Trace() resolves detail steps by parent experiment; campaignName
	// lookups ride the automatic foreign-key index.
	`CREATE INDEX IF NOT EXISTS LoggedSystemStateByParent
		ON LoggedSystemState (parentExperiment)`,
	// Durable campaign cursor for crash recovery (see checkpoint.go).
	checkpointDDL,
	// Campaign phase spans from the telemetry tracer (see telemetry.go).
	telemetryDDL,
}

// NewStore initialises the schema on the given database and returns a
// store over it.
func NewStore(db *sqldb.DB) (*Store, error) {
	for _, ddl := range Schema {
		if _, err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("campaign: init schema: %w", err)
		}
	}
	ins, err := db.Prepare(`INSERT INTO LoggedSystemState VALUES (?, ?, ?, ?, ?, ?)`)
	if err != nil {
		return nil, fmt.Errorf("campaign: prepare insert: %w", err)
	}
	return &Store{db: db, insertExp: ins}, nil
}

// DB exposes the underlying database for the analysis phase, which runs
// user SQL against LoggedSystemState (paper §3.4).
func (s *Store) DB() *sqldb.DB { return s.db }

// PutTargetSystem inserts or replaces a target system configuration.
func (s *Store) PutTargetSystem(t *TargetSystemData) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cfg, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("campaign: marshal target %q: %w", t.Name, err)
	}
	n, err := s.db.Exec(`UPDATE TargetSystemData SET testCardName = ?, config = ? WHERE targetName = ?`,
		sqldb.Text(t.TestCardName), sqldb.Blob(cfg), sqldb.Text(t.Name))
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = s.db.Exec(`INSERT INTO TargetSystemData VALUES (?, ?, ?)`,
			sqldb.Text(t.Name), sqldb.Text(t.TestCardName), sqldb.Blob(cfg))
	}
	return err
}

// GetTargetSystem loads a target system configuration by name.
func (s *Store) GetTargetSystem(name string) (*TargetSystemData, error) {
	r, err := s.db.Query(`SELECT config FROM TargetSystemData WHERE targetName = ?`, sqldb.Text(name))
	if err != nil {
		return nil, err
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("campaign: no target system %q", name)
	}
	var t TargetSystemData
	if err := json.Unmarshal(r.Rows[0][0].B, &t); err != nil {
		return nil, fmt.Errorf("campaign: unmarshal target %q: %w", name, err)
	}
	return &t, nil
}

// ListTargetSystems returns the configured target system names.
func (s *Store) ListTargetSystems() ([]string, error) {
	r, err := s.db.Query(`SELECT targetName FROM TargetSystemData ORDER BY targetName`)
	if err != nil {
		return nil, err
	}
	return textColumn(r, 0), nil
}

// PutCampaign inserts or replaces a campaign definition. The referenced
// target system must exist (foreign key).
func (s *Store) PutCampaign(c *Campaign) error {
	if err := c.Validate(); err != nil {
		return err
	}
	cfg, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("campaign: marshal campaign %q: %w", c.Name, err)
	}
	ts, err := s.GetTargetSystem(c.TargetName)
	if err != nil {
		return fmt.Errorf("campaign %q: %w", c.Name, err)
	}
	n, err := s.db.Exec(`UPDATE CampaignData SET targetName = ?, testCardName = ?, config = ? WHERE campaignName = ?`,
		sqldb.Text(c.TargetName), sqldb.Text(ts.TestCardName), sqldb.Blob(cfg), sqldb.Text(c.Name))
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = s.db.Exec(`INSERT INTO CampaignData VALUES (?, ?, ?, ?)`,
			sqldb.Text(c.Name), sqldb.Text(c.TargetName), sqldb.Text(ts.TestCardName), sqldb.Blob(cfg))
	}
	return err
}

// GetCampaign loads a campaign definition by name.
func (s *Store) GetCampaign(name string) (*Campaign, error) {
	r, err := s.db.Query(`SELECT config FROM CampaignData WHERE campaignName = ?`, sqldb.Text(name))
	if err != nil {
		return nil, err
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("campaign: no campaign %q", name)
	}
	var c Campaign
	if err := json.Unmarshal(r.Rows[0][0].B, &c); err != nil {
		return nil, fmt.Errorf("campaign: unmarshal campaign %q: %w", name, err)
	}
	return &c, nil
}

// ListCampaigns returns all campaign names.
func (s *Store) ListCampaigns() ([]string, error) {
	r, err := s.db.Query(`SELECT campaignName FROM CampaignData ORDER BY campaignName`)
	if err != nil {
		return nil, err
	}
	return textColumn(r, 0), nil
}

// MergeCampaigns combines earlier campaigns into a new one (paper §3.2:
// the user "may ... merge campaign data from several fault injection
// campaigns into a new fault injection campaign"). The first source
// provides the base configuration; locations are unioned and experiment
// counts summed. All sources must share a target system and workload.
func (s *Store) MergeCampaigns(newName string, sources ...string) (*Campaign, error) {
	if len(sources) < 2 {
		return nil, fmt.Errorf("campaign: merge needs at least two sources")
	}
	base, err := s.GetCampaign(sources[0])
	if err != nil {
		return nil, err
	}
	merged := *base
	merged.Name = newName
	seen := make(map[string]bool)
	for _, l := range merged.Locations {
		seen[l] = true
	}
	for _, src := range sources[1:] {
		c, err := s.GetCampaign(src)
		if err != nil {
			return nil, err
		}
		if c.TargetName != merged.TargetName {
			return nil, fmt.Errorf("campaign: merge across target systems (%q vs %q)",
				c.TargetName, merged.TargetName)
		}
		if c.Workload.Name != merged.Workload.Name {
			return nil, fmt.Errorf("campaign: merge across workloads (%q vs %q)",
				c.Workload.Name, merged.Workload.Name)
		}
		for _, l := range c.Locations {
			if !seen[l] {
				seen[l] = true
				merged.Locations = append(merged.Locations, l)
			}
		}
		merged.NumExperiments += c.NumExperiments
	}
	if err := s.PutCampaign(&merged); err != nil {
		return nil, err
	}
	return &merged, nil
}

// encodeExperimentRow flattens a record into the six LoggedSystemState
// column values.
func encodeExperimentRow(r *ExperimentRecord, out []sqldb.Value) ([]sqldb.Value, error) {
	// One allocation for both blobs; the full-capacity slice expression
	// keeps a state append from clobbering data's backing array.
	buf := r.Data.appendJSON(make([]byte, 0, 512))
	n := len(buf)
	buf = r.State.appendJSON(buf)
	data, state := buf[:n:n], buf[n:]
	parent := sqldb.Null()
	if r.Parent != "" {
		parent = sqldb.Text(r.Parent)
	}
	return append(out,
		sqldb.Text(r.Name), parent, sqldb.Text(r.Campaign), sqldb.Int(int64(r.Step)),
		sqldb.Blob(data), sqldb.Blob(state)), nil
}

// LogExperiment stores one LoggedSystemState row.
func (s *Store) LogExperiment(r *ExperimentRecord) error {
	args, err := encodeExperimentRow(r, make([]sqldb.Value, 0, 6))
	if err != nil {
		return err
	}
	start := time.Now()
	_, err = s.insertExp.Exec(args...)
	mInsertSeconds.Observe(time.Since(start).Seconds())
	return err
}

// LogExperimentBatch stores many LoggedSystemState rows with one
// multi-row INSERT — one parse, one lock acquisition, one constraint pass
// per batch. This is the storage hot path for high-throughput campaigns.
func (s *Store) LogExperimentBatch(recs []*ExperimentRecord) error {
	switch len(recs) {
	case 0:
		return nil
	case 1:
		return s.LogExperiment(recs[0])
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO LoggedSystemState VALUES `)
	args := make([]sqldb.Value, 0, len(recs)*6)
	var err error
	for i, r := range recs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(`(?, ?, ?, ?, ?, ?)`)
		if args, err = encodeExperimentRow(r, args); err != nil {
			return err
		}
	}
	start := time.Now()
	_, err = s.db.Exec(sb.String(), args...)
	mInsertSeconds.Observe(time.Since(start).Seconds())
	return err
}

// Flush makes Store satisfy core.ResultSink. Writes are synchronous, so
// there is nothing to flush.
func (s *Store) Flush() error { return nil }

// GetExperiment loads one LoggedSystemState row by experiment name.
func (s *Store) GetExperiment(name string) (*ExperimentRecord, error) {
	r, err := s.db.Query(`SELECT experimentName, parentExperiment, campaignName, step, experimentData, stateVector
		FROM LoggedSystemState WHERE experimentName = ?`, sqldb.Text(name))
	if err != nil {
		return nil, err
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("campaign: no experiment %q", name)
	}
	return decodeExperimentRow(r.Rows[0])
}

// Experiments returns the end-of-experiment records of a campaign in
// sequence order, excluding detail-mode trace steps.
func (s *Store) Experiments(campaignName string) ([]*ExperimentRecord, error) {
	r, err := s.db.Query(`SELECT experimentName, parentExperiment, campaignName, step, experimentData, stateVector
		FROM LoggedSystemState WHERE campaignName = ? AND step = -1 ORDER BY experimentName`,
		sqldb.Text(campaignName))
	if err != nil {
		return nil, err
	}
	out := make([]*ExperimentRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		rec, err := decodeExperimentRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Trace returns the detail-mode per-instruction records of one experiment
// in step order.
func (s *Store) Trace(experimentName string) ([]*ExperimentRecord, error) {
	r, err := s.db.Query(`SELECT experimentName, parentExperiment, campaignName, step, experimentData, stateVector
		FROM LoggedSystemState WHERE parentExperiment = ? AND step >= 0 ORDER BY step`,
		sqldb.Text(experimentName))
	if err != nil {
		return nil, err
	}
	out := make([]*ExperimentRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		rec, err := decodeExperimentRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// DeleteExperiments removes all logged state of a campaign (for re-runs).
// Derived analysis rows referencing the logged experiments are removed
// first, so the foreign keys cannot block the re-run.
func (s *Store) DeleteExperiments(campaignName string) error {
	for _, t := range s.db.TableNames() {
		if t == "AnalysisResults" {
			if _, err := s.db.Exec(`DELETE FROM AnalysisResults WHERE campaignName = ?`,
				sqldb.Text(campaignName)); err != nil {
				return err
			}
		}
	}
	_, err := s.db.Exec(`DELETE FROM LoggedSystemState WHERE campaignName = ?`, sqldb.Text(campaignName))
	return err
}

// DeleteExperiment removes one experiment's logged state (and any
// detail-mode trace rows parented to it) so the experiment can be
// re-attempted — `goofi resume -retry-invalid` uses this to clear
// invalid-run records before resuming.
func (s *Store) DeleteExperiment(name string) error {
	if _, err := s.db.Exec(`DELETE FROM LoggedSystemState WHERE parentExperiment = ?`,
		sqldb.Text(name)); err != nil {
		return err
	}
	_, err := s.db.Exec(`DELETE FROM LoggedSystemState WHERE experimentName = ?`, sqldb.Text(name))
	return err
}

func decodeExperimentRow(row []sqldb.Value) (*ExperimentRecord, error) {
	rec := &ExperimentRecord{
		Name:     row[0].S,
		Campaign: row[2].S,
		Step:     int(row[3].I),
	}
	if !row[1].IsNull() {
		rec.Parent = row[1].S
	}
	if err := json.Unmarshal(row[4].B, &rec.Data); err != nil {
		return nil, fmt.Errorf("campaign: unmarshal experiment data: %w", err)
	}
	sv, err := DecodeStateVector(row[5].B)
	if err != nil {
		return nil, err
	}
	rec.State = *sv
	return rec, nil
}

func textColumn(r *sqldb.Result, i int) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[i].S)
	}
	return out
}
