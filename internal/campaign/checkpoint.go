package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"goofi/internal/sqldb"
)

// Checkpoint is the durable cursor of a running campaign: which
// experiments of the plan are already logged, plus enough identity
// (plan hash, seed, experiment count) to refuse resuming a campaign
// whose definition changed underneath the checkpoint. The campaign's
// RNG state needs no separate field — planning is plan-first, so the
// seed alone reproduces the full injection plan and every
// per-experiment RNG.
type Checkpoint struct {
	Campaign    string `json:"campaign"`
	PlanHash    string `json:"planHash"`
	Seed        int64  `json:"seed"`
	Experiments int    `json:"experiments"`
	// Reference reports that the fault-free reference run is logged.
	Reference bool `json:"reference"`
	// Completed holds the sequence numbers of experiments whose end
	// records are durable, sorted ascending.
	Completed []int `json:"completed"`
}

// Done reports whether sequence number seq is already completed.
func (cp *Checkpoint) Done(seq int) bool {
	i := sort.SearchInts(cp.Completed, seq)
	return i < len(cp.Completed) && cp.Completed[i] == seq
}

// checkpointDDL is appended to Schema in store.go.
const checkpointDDL = `CREATE TABLE IF NOT EXISTS CampaignCheckpoint (
		campaignName TEXT PRIMARY KEY,
		planHash     TEXT NOT NULL,
		cursor       BLOB NOT NULL,
		FOREIGN KEY (campaignName) REFERENCES CampaignData (campaignName)
	)`

// SaveCheckpoint stores the campaign cursor and raises a durability
// barrier, so a checkpoint on disk always implies its experiments are on
// disk too. Callers that buffer records (BatchingSink) must flush before
// saving; Store writes synchronously, so the ordering holds by
// construction.
func (s *Store) SaveCheckpoint(cp *Checkpoint) error {
	blob, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint %q: %w", cp.Campaign, err)
	}
	n, err := s.db.Exec(`UPDATE CampaignCheckpoint SET planHash = ?, cursor = ? WHERE campaignName = ?`,
		sqldb.Text(cp.PlanHash), sqldb.Blob(blob), sqldb.Text(cp.Campaign))
	if err != nil {
		return err
	}
	if n == 0 {
		if _, err := s.db.Exec(`INSERT INTO CampaignCheckpoint VALUES (?, ?, ?)`,
			sqldb.Text(cp.Campaign), sqldb.Text(cp.PlanHash), sqldb.Blob(blob)); err != nil {
			return err
		}
	}
	return s.db.Barrier()
}

// GetCheckpoint loads the stored cursor of a campaign, or nil when the
// campaign has none.
func (s *Store) GetCheckpoint(campaignName string) (*Checkpoint, error) {
	r, err := s.db.Query(`SELECT cursor FROM CampaignCheckpoint WHERE campaignName = ?`,
		sqldb.Text(campaignName))
	if err != nil {
		return nil, err
	}
	if len(r.Rows) == 0 {
		return nil, nil
	}
	var cp Checkpoint
	if err := json.Unmarshal(r.Rows[0][0].B, &cp); err != nil {
		return nil, fmt.Errorf("campaign: unmarshal checkpoint %q: %w", campaignName, err)
	}
	return &cp, nil
}

// DeleteCheckpoint removes a campaign's cursor (fresh runs and completed
// campaigns have none).
func (s *Store) DeleteCheckpoint(campaignName string) error {
	_, err := s.db.Exec(`DELETE FROM CampaignCheckpoint WHERE campaignName = ?`,
		sqldb.Text(campaignName))
	return err
}

// RecoverCursor reconstructs the resume point of an interrupted
// campaign. The stored checkpoint can lag reality — records flush before
// the cursor row is written, and a crash can land between the two — so
// the durable end-of-experiment rows are unioned in. Detail-trace rows
// whose experiment has no end row (the experiment died mid-run) are
// pruned, so re-running that experiment cannot collide with leftover
// step rows.
func (s *Store) RecoverCursor(campaignName string) (*Checkpoint, error) {
	cp, err := s.GetCheckpoint(campaignName)
	if err != nil {
		return nil, err
	}
	r, err := s.db.Query(`SELECT experimentName FROM LoggedSystemState WHERE campaignName = ? AND step = -1`,
		sqldb.Text(campaignName))
	if err != nil {
		return nil, err
	}
	ref := ReferenceName(campaignName)
	have := make(map[string]bool, len(r.Rows))
	completed := make(map[int]bool, len(r.Rows))
	hasRef := false
	for _, row := range r.Rows {
		name := row[0].S
		have[name] = true
		if name == ref {
			hasRef = true
			continue
		}
		if seq, ok := parseExperimentSeq(campaignName, name); ok {
			completed[seq] = true
		}
	}
	out := &Checkpoint{Campaign: campaignName, Reference: hasRef}
	if cp != nil {
		out.PlanHash = cp.PlanHash
		out.Seed = cp.Seed
		out.Experiments = cp.Experiments
		out.Reference = out.Reference || cp.Reference
		for _, seq := range cp.Completed {
			completed[seq] = true
		}
	}
	for seq := range completed {
		out.Completed = append(out.Completed, seq)
	}
	sort.Ints(out.Completed)
	if err := s.pruneOrphanTraces(campaignName, have); err != nil {
		return nil, err
	}
	return out, nil
}

// pruneOrphanTraces deletes detail-mode step rows whose parent
// experiment has no end record.
func (s *Store) pruneOrphanTraces(campaignName string, have map[string]bool) error {
	r, err := s.db.Query(`SELECT DISTINCT parentExperiment FROM LoggedSystemState
		WHERE campaignName = ? AND step >= 0`, sqldb.Text(campaignName))
	if err != nil {
		return err
	}
	for _, row := range r.Rows {
		if row[0].IsNull() || have[row[0].S] {
			continue
		}
		if _, err := s.db.Exec(`DELETE FROM LoggedSystemState WHERE parentExperiment = ? AND step >= 0`,
			sqldb.Text(row[0].S)); err != nil {
			return err
		}
	}
	return nil
}

// parseExperimentSeq inverts ExperimentName: "c/exp00042" -> 42. Names
// with any other shape (reference, reruns, detail steps) report false.
func parseExperimentSeq(campaignName, name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, campaignName+"/exp")
	if !ok || rest == "" {
		return 0, false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return 0, false
		}
	}
	seq, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return seq, true
}
