package campaign

import (
	"fmt"
	"strings"
	"testing"

	"goofi/internal/sqldb"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Campaign:    "camp-1",
		PlanHash:    "abc123",
		Seed:        42,
		Experiments: 10,
		Reference:   true,
		Completed:   []int{0, 2, 5},
	}
}

func TestCheckpointDone(t *testing.T) {
	cp := testCheckpoint()
	for _, seq := range []int{0, 2, 5} {
		if !cp.Done(seq) {
			t.Errorf("Done(%d) = false, want true", seq)
		}
	}
	for _, seq := range []int{-1, 1, 3, 4, 6, 100} {
		if cp.Done(seq) {
			t.Errorf("Done(%d) = true, want false", seq)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	st := sinkFixture(t)
	if got, err := st.GetCheckpoint("camp-1"); err != nil || got != nil {
		t.Fatalf("before save: got %+v, %v; want nil, nil", got, err)
	}
	cp := testCheckpoint()
	if err := st.SaveCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetCheckpoint("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.PlanHash != cp.PlanHash || got.Seed != cp.Seed ||
		got.Experiments != cp.Experiments || !got.Reference ||
		fmt.Sprint(got.Completed) != fmt.Sprint(cp.Completed) {
		t.Errorf("round trip: got %+v, want %+v", got, cp)
	}
	// A second save is an update, not a duplicate-key failure.
	cp.Completed = append(cp.Completed, 7)
	cp.PlanHash = "def456"
	if err := st.SaveCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	got, err = st.GetCheckpoint("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.PlanHash != "def456" || !got.Done(7) {
		t.Errorf("after update: got %+v", got)
	}
	if err := st.DeleteCheckpoint("camp-1"); err != nil {
		t.Fatal(err)
	}
	if got, err := st.GetCheckpoint("camp-1"); err != nil || got != nil {
		t.Errorf("after delete: got %+v, %v; want nil, nil", got, err)
	}
	// Deleting an absent checkpoint is not an error.
	if err := st.DeleteCheckpoint("camp-1"); err != nil {
		t.Errorf("second delete: %v", err)
	}
}

func TestSaveCheckpointRequiresCampaign(t *testing.T) {
	st := newStore(t) // no campaign rows at all
	cp := testCheckpoint()
	cp.Campaign = "no-such-campaign"
	if err := st.SaveCheckpoint(cp); err == nil {
		t.Error("checkpoint for unknown campaign accepted (FK not enforced)")
	}
}

// TestRecoverCursorUnionsDurableRows is the crash-window case: records
// flush before the cursor row is written, so end-of-experiment rows can
// be durable while the stored checkpoint still lags. RecoverCursor must
// report the union.
func TestRecoverCursorUnionsDurableRows(t *testing.T) {
	st := sinkFixture(t)
	// Stored cursor knows about 0 and 5 only.
	if err := st.SaveCheckpoint(&Checkpoint{
		Campaign: "camp-1", PlanHash: "h1", Seed: 42, Experiments: 10,
		Completed: []int{0, 5},
	}); err != nil {
		t.Fatal(err)
	}
	// But rows 0..2 plus the reference made it to the store.
	if err := st.LogExperiment(&ExperimentRecord{
		Name: ReferenceName("camp-1"), Campaign: "camp-1", Step: -1,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.LogExperiment(sinkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := st.RecoverCursor("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Reference {
		t.Error("reference row logged but Reference = false")
	}
	if cp.PlanHash != "h1" || cp.Seed != 42 || cp.Experiments != 10 {
		t.Errorf("identity fields lost: %+v", cp)
	}
	if want := "[0 1 2 5]"; fmt.Sprint(cp.Completed) != want {
		t.Errorf("Completed = %v, want %v", cp.Completed, want)
	}
}

// TestRecoverCursorWithoutCheckpointRow recovers purely from logged
// rows — the crash happened before the first cursor write.
func TestRecoverCursorWithoutCheckpointRow(t *testing.T) {
	st := sinkFixture(t)
	if err := st.LogExperiment(sinkRecord(3)); err != nil {
		t.Fatal(err)
	}
	cp, err := st.RecoverCursor("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Reference {
		t.Error("no reference row but Reference = true")
	}
	if want := "[3]"; fmt.Sprint(cp.Completed) != want {
		t.Errorf("Completed = %v, want %v", cp.Completed, want)
	}
	if cp.PlanHash != "" {
		t.Errorf("PlanHash = %q, want empty (no stored checkpoint)", cp.PlanHash)
	}
}

func TestRecoverCursorPrunesOrphanTraces(t *testing.T) {
	st := sinkFixture(t)
	// Experiment 0 finished: end row plus detail steps.
	if err := st.LogExperiment(sinkRecord(0)); err != nil {
		t.Fatal(err)
	}
	done := ExperimentName("camp-1", 0)
	for step := 0; step < 3; step++ {
		if err := st.LogExperiment(&ExperimentRecord{
			Name:     fmt.Sprintf("%s/step%06d", done, step),
			Parent:   done,
			Campaign: "camp-1",
			Step:     step,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Experiment 1 died mid-run: steps on disk, no end row.
	orphan := ExperimentName("camp-1", 1)
	for step := 0; step < 2; step++ {
		if err := st.LogExperiment(&ExperimentRecord{
			Name:     fmt.Sprintf("%s/step%06d", orphan, step),
			Parent:   orphan,
			Campaign: "camp-1",
			Step:     step,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := st.RecoverCursor("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if want := "[0]"; fmt.Sprint(cp.Completed) != want {
		t.Errorf("Completed = %v, want %v (orphan must not count)", cp.Completed, want)
	}
	count := func(parent string) int {
		r, err := st.db.Query(`SELECT COUNT(*) FROM LoggedSystemState
			WHERE parentExperiment = ? AND step >= 0`, sqldb.Text(parent))
		if err != nil {
			t.Fatal(err)
		}
		return int(r.Rows[0][0].I)
	}
	if n := count(done); n != 3 {
		t.Errorf("finished experiment lost its trace: %d step rows, want 3", n)
	}
	if n := count(orphan); n != 0 {
		t.Errorf("orphan trace survived: %d step rows, want 0", n)
	}
}

// TestBatchingSinkSaveCheckpointFlushesFirst checks the crash-safety
// invariant: by the time the cursor row exists, every record queued
// before it is durable in the store.
func TestBatchingSinkSaveCheckpointFlushesFirst(t *testing.T) {
	st := sinkFixture(t)
	s := NewBatchingSink(st, 1000) // batch never fills on its own
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.LogExperiment(sinkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cp := testCheckpoint()
	cp.Completed = []int{0, 1, 2, 3, 4}
	if err := s.SaveCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("cursor saved with %d durable records, want 5", len(recs))
	}
	got, err := st.GetCheckpoint("camp-1")
	if err != nil || got == nil {
		t.Fatalf("checkpoint missing after SaveCheckpoint: %+v, %v", got, err)
	}
}

// brokenDisk fails every write, standing in for a full or dead device
// under the write-ahead log.
type brokenDisk struct{}

func (brokenDisk) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("simulated disk full")
}

// TestSinkPropagatesWALFailure drives a write failure from the bottom of
// the stack (the WAL's writer) up through the batching sink: the flush
// fails with a useful error, the sink stays poisoned, and SaveCheckpoint
// refuses to write a cursor that would claim durability it doesn't have.
func TestSinkPropagatesWALFailure(t *testing.T) {
	st := sinkFixture(t) // schema + fixtures written before the disk "fails"
	st.db.AttachWAL(sqldb.NewWAL(brokenDisk{}, sqldb.SyncAlways))
	s := NewBatchingSink(st, 2)
	_ = s.LogExperiment(sinkRecord(0))
	_ = s.LogExperiment(sinkRecord(1)) // completes the batch, hits the WAL
	err := s.Flush()
	if err == nil {
		t.Fatal("flush over a failed WAL returned nil")
	}
	for _, want := range []string{"wal", "disk full"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("flush error %q does not mention %q", err, want)
		}
	}
	if err := s.SaveCheckpoint(testCheckpoint()); err == nil {
		t.Error("SaveCheckpoint wrote a cursor through a poisoned sink")
	}
	if err := s.LogExperiment(sinkRecord(2)); err == nil {
		t.Error("poisoned sink accepted another record")
	}
	if err := s.Close(); err == nil {
		t.Error("poisoned sink closed without error")
	}
}
