package campaign

import (
	"encoding/base64"
	"sort"
	"strconv"

	"goofi/internal/trigger"
)

// This file hand-rolls the JSON encoders for the two BLOBs written on
// every LoggedSystemState insert — experimentData and stateVector. The
// output is plain JSON that json.Unmarshal reads back (the decode side
// stays encoding/json), but appending directly into one buffer avoids the
// reflection walk that dominated the insert profile. Field names and
// omitempty behaviour must mirror the struct tags; the equivalence
// property test in codec_test.go enforces that against encoding/json.

const jsonHex = "0123456789abcdef"

// appendJSONString appends a JSON-quoted string. Control characters are
// escaped; valid UTF-8 passes through unescaped, which json.Unmarshal
// accepts.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendJSONBytes appends a []byte the way encoding/json does: base64 in
// a string, or null for a nil slice.
func appendJSONBytes(buf []byte, b []byte) []byte {
	if b == nil {
		return append(buf, "null"...)
	}
	buf = append(buf, '"')
	buf = base64.StdEncoding.AppendEncode(buf, b)
	return append(buf, '"')
}

func appendTriggerSpec(buf []byte, s *trigger.Spec) []byte {
	buf = append(buf, `{"kind":`...)
	buf = appendJSONString(buf, s.Kind)
	if s.Cycle != 0 {
		buf = append(buf, `,"cycle":`...)
		buf = strconv.AppendUint(buf, s.Cycle, 10)
	}
	if s.Count != 0 {
		buf = append(buf, `,"count":`...)
		buf = strconv.AppendUint(buf, s.Count, 10)
	}
	if s.Addr != 0 {
		buf = append(buf, `,"addr":`...)
		buf = strconv.AppendUint(buf, uint64(s.Addr), 10)
	}
	if s.Occurrence != 0 {
		buf = append(buf, `,"occurrence":`...)
		buf = strconv.AppendInt(buf, int64(s.Occurrence), 10)
	}
	if s.Write {
		buf = append(buf, `,"write":true`...)
	}
	if s.Period != 0 {
		buf = append(buf, `,"period":`...)
		buf = strconv.AppendUint(buf, s.Period, 10)
	}
	return append(buf, '}')
}

func appendOutcome(buf []byte, o *Outcome) []byte {
	buf = append(buf, `{"status":`...)
	buf = appendJSONString(buf, string(o.Status))
	if o.Mechanism != "" {
		buf = append(buf, `,"mechanism":`...)
		buf = appendJSONString(buf, o.Mechanism)
	}
	if o.DetectionCycle != 0 {
		buf = append(buf, `,"detectionCycle":`...)
		buf = strconv.AppendUint(buf, o.DetectionCycle, 10)
	}
	buf = append(buf, `,"cycles":`...)
	buf = strconv.AppendUint(buf, o.Cycles, 10)
	if o.Iterations != 0 {
		buf = append(buf, `,"iterations":`...)
		buf = strconv.AppendInt(buf, int64(o.Iterations), 10)
	}
	if o.Recovered != 0 {
		buf = append(buf, `,"recovered":`...)
		buf = strconv.AppendInt(buf, int64(o.Recovered), 10)
	}
	if o.Attempts != 0 {
		buf = append(buf, `,"attempts":`...)
		buf = strconv.AppendInt(buf, int64(o.Attempts), 10)
	}
	if o.HarnessError != "" {
		buf = append(buf, `,"harnessError":`...)
		buf = appendJSONString(buf, o.HarnessError)
	}
	return append(buf, '}')
}

// appendJSON encodes an ExperimentData as its json.Marshal equivalent.
func (d *ExperimentData) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, int64(d.Seq), 10)
	buf = append(buf, `,"fault":{"kind":`...)
	buf = appendJSONString(buf, string(d.Fault.Kind))
	buf = append(buf, `,"bits":`...)
	if d.Fault.Bits == nil {
		buf = append(buf, "null"...)
	} else {
		buf = append(buf, '[')
		for i, b := range d.Fault.Bits {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(b), 10)
		}
		buf = append(buf, ']')
	}
	if d.Fault.ActiveProb != 0 {
		buf = append(buf, `,"activeProb":`...)
		buf = strconv.AppendFloat(buf, d.Fault.ActiveProb, 'g', -1, 64)
	}
	buf = append(buf, '}')
	if len(d.LocationNames) > 0 {
		buf = append(buf, `,"locationNames":[`...)
		for i, n := range d.LocationNames {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, n)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"trigger":`...)
	buf = appendTriggerSpec(buf, &d.Trigger)
	if d.InjectionCycle != 0 {
		buf = append(buf, `,"injectionCycle":`...)
		buf = strconv.AppendUint(buf, d.InjectionCycle, 10)
	}
	buf = append(buf, `,"injected":`...)
	buf = strconv.AppendBool(buf, d.Injected)
	buf = append(buf, `,"outcome":`...)
	buf = appendOutcome(buf, &d.Outcome)
	return append(buf, '}')
}

// appendJSON encodes a StateVector as its json.Marshal equivalent. Map
// keys are emitted in sorted order like encoding/json, keeping the
// encoding deterministic — experiment reproduction compares these bytes.
func (s *StateVector) appendJSON(buf []byte) []byte {
	buf = append(buf, '{')
	first := true
	if len(s.Scan) > 0 {
		buf = append(buf, `"scan":`...)
		buf = appendJSONBytes(buf, s.Scan)
		first = false
	}
	if len(s.Memory) > 0 {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, `"memory":{`...)
		keys := make([]string, 0, len(s.Memory))
		for k := range s.Memory {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = appendJSONBytes(buf, s.Memory[k])
		}
		buf = append(buf, '}')
	}
	if len(s.Outputs) > 0 {
		if !first {
			buf = append(buf, ',')
		}
		buf = append(buf, `"outputs":{`...)
		ports := make([]int, 0, len(s.Outputs))
		for p := range s.Outputs {
			ports = append(ports, int(p))
		}
		sort.Ints(ports)
		for i, p := range ports {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '"')
			buf = strconv.AppendInt(buf, int64(p), 10)
			buf = append(buf, '"', ':')
			vs := s.Outputs[uint16(p)]
			if vs == nil {
				buf = append(buf, "null"...)
				continue
			}
			buf = append(buf, '[')
			for j, v := range vs {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendUint(buf, uint64(v), 10)
			}
			buf = append(buf, ']')
		}
		buf = append(buf, '}')
	}
	return append(buf, '}')
}
