package campaign

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// The hand-rolled appenders in codec.go must stay observationally
// identical to encoding/json: whatever they emit, json.Unmarshal must
// read back to the same struct, and a generic decode must match the
// generic decode of json.Marshal's output.

func randExperimentData(rng *rand.Rand) *ExperimentData {
	kinds := []faultmodel.Kind{faultmodel.Transient, faultmodel.Intermittent, faultmodel.StuckAt0}
	d := &ExperimentData{
		Seq:   rng.Intn(2000) - 5,
		Fault: faultmodel.Fault{Kind: kinds[rng.Intn(len(kinds))]},
		Trigger: trigger.Spec{
			Kind:       "cycle",
			Cycle:      uint64(rng.Intn(10000)),
			Occurrence: rng.Intn(3),
		},
		InjectionCycle: uint64(rng.Intn(3)) * 7919,
		Injected:       rng.Intn(2) == 0,
		Outcome: Outcome{
			Status:     OutcomeStatus([]string{"detected", "escaped", "latent", ""}[rng.Intn(4)]),
			Mechanism:  []string{"", "watchdog", `odd "name"` + "\n\ttab"}[rng.Intn(3)],
			Cycles:       uint64(rng.Intn(1 << 30)),
			Iterations:   rng.Intn(4),
			Recovered:    rng.Intn(3),
			Attempts:     rng.Intn(4),
			HarnessError: []string{"", "scan corrupted", "wedged after\n\"breakpoint\""}[rng.Intn(3)],
		},
	}
	if rng.Intn(4) > 0 {
		d.Fault.Bits = make([]int, rng.Intn(4)+1)
		for i := range d.Fault.Bits {
			d.Fault.Bits[i] = rng.Intn(512)
		}
	}
	if rng.Intn(2) == 0 {
		d.Fault.ActiveProb = float64(rng.Intn(100)) / 101
	}
	if rng.Intn(3) == 0 {
		d.LocationNames = []string{"cpu.r1", "dcache.line\x01ctl"}[:rng.Intn(2)+1]
	}
	if rng.Intn(3) == 0 {
		d.Outcome.DetectionCycle = uint64(rng.Intn(100000))
	}
	return d
}

func randStateVector(rng *rand.Rand) *StateVector {
	s := &StateVector{}
	if rng.Intn(4) > 0 {
		s.Scan = make([]byte, rng.Intn(40)+1)
		rng.Read(s.Scan)
	}
	if rng.Intn(4) > 0 {
		s.Memory = map[string][]byte{}
		for i := 0; i < rng.Intn(4)+1; i++ {
			b := make([]byte, rng.Intn(16))
			rng.Read(b)
			s.Memory[[]string{"x", "result", "buf2", "z\"q"}[i%4]] = b
		}
	}
	if rng.Intn(4) > 0 {
		s.Outputs = map[uint16][]uint32{}
		for i := 0; i < rng.Intn(3)+1; i++ {
			vs := make([]uint32, rng.Intn(5))
			for j := range vs {
				vs[j] = rng.Uint32()
			}
			s.Outputs[uint16(rng.Intn(1<<16))] = vs
		}
	}
	return s
}

// genericEqual compares two JSON encodings structurally (field order and
// number formatting independent).
func genericEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ga, gb any
	if err := json.Unmarshal(a, &ga); err != nil {
		t.Fatalf("custom encoding is not valid JSON: %v\n%s", err, a)
	}
	if err := json.Unmarshal(b, &gb); err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(ga, gb)
}

func TestCodecExperimentDataMatchesEncodingJSON(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randExperimentData(rng)
		custom := d.appendJSON(nil)
		std, err := json.Marshal(d)
		if err != nil {
			return false
		}
		if !genericEqual(t, custom, std) {
			t.Logf("custom: %s\nstd:    %s", custom, std)
			return false
		}
		// Round trip through the decoder used everywhere else.
		var back ExperimentData
		if err := json.Unmarshal(custom, &back); err != nil {
			return false
		}
		return reflect.DeepEqual(&back, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodecStateVectorMatchesEncodingJSON(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randStateVector(rng)
		custom, err := s.Encode()
		if err != nil {
			return false
		}
		std, err := json.Marshal(s)
		if err != nil {
			return false
		}
		if !genericEqual(t, custom, std) {
			t.Logf("custom: %s\nstd:    %s", custom, std)
			return false
		}
		back, err := DecodeStateVector(custom)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodecStateVectorEmpty(t *testing.T) {
	b, err := (&StateVector{}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Errorf("empty state vector encoded as %s", b)
	}
}
