package campaign

import (
	"strings"
	"testing"

	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
)

func testTarget() *TargetSystemData {
	return &TargetSystemData{
		Name:         "thor-board",
		TestCardName: "card-1",
		Chains: []scanchain.Map{
			{
				Chain:  "internal",
				Length: 100,
				Locations: []scanchain.Location{
					{Name: "cpu.r0", Offset: 0, Width: 32},
					{Name: "cpu.r1", Offset: 32, Width: 32},
					{Name: "cpu.pc", Offset: 64, Width: 32},
					{Name: "cpu.cycle", Offset: 96, Width: 4, ReadOnly: true},
				},
			},
		},
	}
}

func testCampaign() *Campaign {
	return &Campaign{
		Name:           "camp-1",
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle", Cycle: 100},
		NumExperiments: 10,
		Seed:           42,
		Termination:    Termination{TimeoutCycles: 100000},
		Workload:       WorkloadSpec{Name: "w", Source: "halt"},
		LogMode:        LogNormal,
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTargetSystemValidate(t *testing.T) {
	if err := testTarget().Validate(); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
	bad := testTarget()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("unnamed target accepted")
	}
	bad = testTarget()
	bad.Chains = nil
	if err := bad.Validate(); err == nil {
		t.Error("chainless target accepted")
	}
	bad = testTarget()
	bad.Chains = append(bad.Chains, bad.Chains[0])
	if err := bad.Validate(); err == nil {
		t.Error("duplicate chain accepted")
	}
	bad = testTarget()
	bad.Chains[0].Locations[0].Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid chain map accepted")
	}
}

func TestCampaignValidate(t *testing.T) {
	if err := testCampaign().Validate(); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
	mutations := []struct {
		name string
		fn   func(*Campaign)
	}{
		{"no name", func(c *Campaign) { c.Name = "" }},
		{"no target", func(c *Campaign) { c.TargetName = "" }},
		{"no locations", func(c *Campaign) { c.Locations = nil }},
		{"bad fault model", func(c *Campaign) { c.FaultModel.Kind = "x" }},
		{"zero experiments", func(c *Campaign) { c.NumExperiments = 0 }},
		{"no timeout", func(c *Campaign) { c.Termination.TimeoutCycles = 0 }},
		{"no workload", func(c *Campaign) { c.Workload.Source = "" }},
		{"bad trigger", func(c *Campaign) { c.Trigger.Kind = "x" }},
		{"no log mode", func(c *Campaign) { c.LogMode = "" }},
		{"bad log mode", func(c *Campaign) { c.LogMode = "loud" }},
		{"window without cycle trigger", func(c *Campaign) {
			c.RandomWindow = [2]uint64{1, 100}
			c.Trigger.Kind = "branch"
		}},
		{"empty window", func(c *Campaign) {
			c.RandomWindow = [2]uint64{100, 100}
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := testCampaign()
			m.fn(c)
			if err := c.Validate(); err == nil {
				t.Errorf("campaign with %s accepted", m.name)
			}
		})
	}
}

func TestStoreTargetRoundTrip(t *testing.T) {
	s := newStore(t)
	ts := testTarget()
	if err := s.PutTargetSystem(ts); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetTargetSystem("thor-board")
	if err != nil {
		t.Fatal(err)
	}
	if got.TestCardName != "card-1" || len(got.Chains) != 1 || got.Chains[0].Length != 100 {
		t.Errorf("loaded target = %+v", got)
	}
	// Upsert.
	ts.TestCardName = "card-2"
	if err := s.PutTargetSystem(ts); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetTargetSystem("thor-board")
	if err != nil {
		t.Fatal(err)
	}
	if got.TestCardName != "card-2" {
		t.Errorf("upsert lost: %q", got.TestCardName)
	}
	names, err := s.ListTargetSystems()
	if err != nil || len(names) != 1 || names[0] != "thor-board" {
		t.Errorf("ListTargetSystems = %v, %v", names, err)
	}
	if _, err := s.GetTargetSystem("ghost"); err == nil {
		t.Error("missing target did not error")
	}
}

func TestStoreCampaignRequiresTarget(t *testing.T) {
	s := newStore(t)
	// Foreign key: campaign without its target system must be rejected.
	if err := s.PutCampaign(testCampaign()); err == nil {
		t.Fatal("campaign without target accepted")
	}
	if err := s.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(testCampaign()); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetCampaign("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExperiments != 10 || got.Workload.Source != "halt" {
		t.Errorf("loaded campaign = %+v", got)
	}
	names, err := s.ListCampaigns()
	if err != nil || len(names) != 1 {
		t.Errorf("ListCampaigns = %v, %v", names, err)
	}
}

func TestStoreMergeCampaigns(t *testing.T) {
	s := newStore(t)
	if err := s.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	c1 := testCampaign()
	c1.Name = "a"
	c1.Locations = []string{"cpu.r0"}
	c1.NumExperiments = 10
	c2 := testCampaign()
	c2.Name = "b"
	c2.Locations = []string{"cpu.r1", "cpu.r0"}
	c2.NumExperiments = 5
	for _, c := range []*Campaign{c1, c2} {
		if err := s.PutCampaign(c); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := s.MergeCampaigns("ab", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumExperiments != 15 {
		t.Errorf("merged experiments = %d, want 15", merged.NumExperiments)
	}
	if len(merged.Locations) != 2 {
		t.Errorf("merged locations = %v", merged.Locations)
	}
	if _, err := s.GetCampaign("ab"); err != nil {
		t.Errorf("merged campaign not stored: %v", err)
	}
	// Mismatched targets refuse to merge.
	other := testTarget()
	other.Name = "other-board"
	if err := s.PutTargetSystem(other); err != nil {
		t.Fatal(err)
	}
	c3 := testCampaign()
	c3.Name = "c"
	c3.TargetName = "other-board"
	if err := s.PutCampaign(c3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MergeCampaigns("bad", "a", "c"); err == nil {
		t.Error("cross-target merge accepted")
	}
	if _, err := s.MergeCampaigns("solo", "a"); err == nil {
		t.Error("single-source merge accepted")
	}
}

func TestLogAndQueryExperiments(t *testing.T) {
	s := newStore(t)
	if err := s.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(testCampaign()); err != nil {
		t.Fatal(err)
	}
	// Foreign key: an experiment of an unknown campaign is rejected.
	err := s.LogExperiment(&ExperimentRecord{
		Name: "x", Campaign: "ghost", Step: -1,
		Data: ExperimentData{Seq: 0},
	})
	if err == nil {
		t.Fatal("experiment for unknown campaign accepted")
	}
	for i := 0; i < 3; i++ {
		rec := &ExperimentRecord{
			Name:     ExperimentName("camp-1", i),
			Campaign: "camp-1",
			Step:     -1,
			Data: ExperimentData{
				Seq:     i,
				Outcome: Outcome{Status: OutcomeCompleted, Cycles: uint64(100 + i)},
			},
			State: StateVector{Memory: map[string][]byte{"out": {1, 2, 3, 4}}},
		}
		if err := s.LogExperiment(rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.Experiments("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("experiments = %d, want 3", len(recs))
	}
	if recs[1].Data.Outcome.Cycles != 101 {
		t.Errorf("record 1 = %+v", recs[1].Data)
	}
	if string(recs[0].State.Memory["out"]) != "\x01\x02\x03\x04" {
		t.Errorf("state memory = %v", recs[0].State.Memory)
	}
	// Duplicate experiment names are rejected (primary key).
	err = s.LogExperiment(&ExperimentRecord{
		Name: ExperimentName("camp-1", 0), Campaign: "camp-1", Step: -1,
	})
	if err == nil {
		t.Error("duplicate experiment name accepted")
	}
	if err := s.DeleteExperiments("camp-1"); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Experiments("camp-1")
	if err != nil || len(recs) != 0 {
		t.Errorf("after delete: %d records, err %v", len(recs), err)
	}
}

func TestParentExperimentRerunTracking(t *testing.T) {
	// The paper §2.3 scenario: experiment E1 shows a fail-silence
	// violation; E2 re-runs it with the same campaign data in detail
	// mode, recording E1 as parentExperiment so E1's campaign data can
	// be tracked through the foreign keys.
	s := newStore(t)
	if err := s.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(testCampaign()); err != nil {
		t.Fatal(err)
	}
	e1 := &ExperimentRecord{
		Name: "camp-1/exp00001", Campaign: "camp-1", Step: -1,
		Data: ExperimentData{Seq: 1, Outcome: Outcome{Status: OutcomeCompleted}},
	}
	if err := s.LogExperiment(e1); err != nil {
		t.Fatal(err)
	}
	e2 := &ExperimentRecord{
		Name: "camp-1/exp00001/rerun1", Parent: "camp-1/exp00001",
		Campaign: "camp-1", Step: -1,
		Data: ExperimentData{Seq: 1, Outcome: Outcome{Status: OutcomeCompleted}},
	}
	if err := s.LogExperiment(e2); err != nil {
		t.Fatal(err)
	}
	// Detail-mode trace rows of the re-run.
	for i := 0; i < 5; i++ {
		rec := &ExperimentRecord{
			Name:     ExperimentName("camp-1", 1) + "/rerun1/step" + string(rune('0'+i)),
			Parent:   "camp-1/exp00001/rerun1",
			Campaign: "camp-1",
			Step:     i,
		}
		if err := s.LogExperiment(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.GetExperiment("camp-1/exp00001/rerun1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent != "camp-1/exp00001" {
		t.Errorf("parent = %q", got.Parent)
	}
	trace, err := s.Trace("camp-1/exp00001/rerun1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 5 {
		t.Errorf("trace steps = %d, want 5", len(trace))
	}
	for i, r := range trace {
		if r.Step != i {
			t.Errorf("trace[%d].Step = %d", i, r.Step)
		}
	}
	// End-of-experiment listing excludes the trace rows.
	recs, err := s.Experiments("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("end-of-experiment records = %d, want 2", len(recs))
	}
}

func TestStateVectorRoundTrip(t *testing.T) {
	sv := &StateVector{
		Scan:    []byte{1, 2, 3},
		Memory:  map[string][]byte{"a": {9}},
		Outputs: map[uint16][]uint32{1: {7, 8}},
	}
	b, err := sv.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStateVector(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Scan) != "\x01\x02\x03" || got.Outputs[1][1] != 8 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeStateVector([]byte("junk")); err == nil {
		t.Error("garbage state vector accepted")
	}
}

func TestSchemaDDLNames(t *testing.T) {
	// The schema follows paper Fig 4's table and attribute names.
	joined := strings.Join(Schema, "\n")
	for _, want := range []string{
		"TargetSystemData", "CampaignData", "LoggedSystemState",
		"experimentName", "parentExperiment", "campaignName",
		"experimentData", "stateVector", "testCardName",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("schema missing %q", want)
		}
	}
}

func TestExperimentNames(t *testing.T) {
	if got := ExperimentName("c", 7); got != "c/exp00007" {
		t.Errorf("ExperimentName = %q", got)
	}
	if got := ReferenceName("c"); got != "c/reference" {
		t.Errorf("ReferenceName = %q", got)
	}
}
