package campaign

import (
	"fmt"
	"strings"

	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
)

// CampaignTelemetry keeps the paper's everything-in-the-database design
// for the observability layer: the tracer's phase spans (plan,
// reference, one per experiment) land here after the campaign finishes,
// so `goofi analyze` can report where campaign time went without the
// live /metrics endpoint.

// telemetryDDL is appended to Schema in store.go.
const telemetryDDL = `CREATE TABLE IF NOT EXISTS CampaignTelemetry (
		campaignName TEXT NOT NULL,
		phase        TEXT NOT NULL,
		board        INTEGER NOT NULL,
		seq          INTEGER NOT NULL,
		startCycle   INTEGER NOT NULL,
		endCycle     INTEGER NOT NULL,
		wallNS       INTEGER NOT NULL,
		FOREIGN KEY (campaignName) REFERENCES CampaignData (campaignName)
	)`

// LogTelemetry stores a batch of phase spans for a campaign with one
// multi-row INSERT. Cycle fields pass through int64 (the engine's
// INTEGER); campaign cycle counts stay far below 2^63.
func (s *Store) LogTelemetry(campaignName string, spans []telemetry.SpanRecord) error {
	if len(spans) == 0 {
		return nil
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO CampaignTelemetry VALUES `)
	args := make([]sqldb.Value, 0, len(spans)*7)
	for i, sp := range spans {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(`(?, ?, ?, ?, ?, ?, ?)`)
		args = append(args,
			sqldb.Text(campaignName),
			sqldb.Text(sp.Phase),
			sqldb.Int(int64(sp.Board)),
			sqldb.Int(int64(sp.Seq)),
			sqldb.Int(int64(sp.StartCycle)),
			sqldb.Int(int64(sp.EndCycle)),
			sqldb.Int(sp.WallNS),
		)
	}
	_, err := s.db.Exec(sb.String(), args...)
	if err != nil {
		return fmt.Errorf("campaign: log telemetry for %q: %w", campaignName, err)
	}
	return nil
}

// TelemetrySpans loads a campaign's stored phase spans in insertion
// order.
func (s *Store) TelemetrySpans(campaignName string) ([]telemetry.SpanRecord, error) {
	r, err := s.db.Query(`SELECT phase, board, seq, startCycle, endCycle, wallNS
		FROM CampaignTelemetry WHERE campaignName = ?`, sqldb.Text(campaignName))
	if err != nil {
		return nil, err
	}
	out := make([]telemetry.SpanRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, telemetry.SpanRecord{
			Phase:      row[0].S,
			Board:      int(row[1].I),
			Seq:        int(row[2].I),
			StartCycle: uint64(row[3].I),
			EndCycle:   uint64(row[4].I),
			WallNS:     row[5].I,
		})
	}
	return out, nil
}

// DeleteTelemetry removes a campaign's stored spans (fresh runs start
// clean, like DeleteExperiments for records).
func (s *Store) DeleteTelemetry(campaignName string) error {
	_, err := s.db.Exec(`DELETE FROM CampaignTelemetry WHERE campaignName = ?`,
		sqldb.Text(campaignName))
	return err
}
