package campaign

import "goofi/internal/telemetry"

// Storage-pipeline metrics: what the batching sink queued and grouped,
// and how long the underlying INSERT statements took. The histogram is
// observed around Store.LogExperiment/LogExperimentBatch, so it measures
// the sqldb engine (parse cache, constraint pass, WAL append) rather
// than the sink's queueing.
var (
	mSinkRecords = telemetry.NewCounter("goofi_campaign_sink_records_total",
		"Experiment records accepted by the batching sink.")
	mSinkBatches = telemetry.NewCounter("goofi_campaign_sink_batches_total",
		"Multi-row batches handed to the sink's writer goroutine.")
	mSinkFlushes = telemetry.NewCounter("goofi_campaign_sink_flushes_total",
		"Explicit sink flushes (checkpoints, pauses, termination).")
	mInsertSeconds = telemetry.NewHistogram("goofi_sqldb_insert_seconds",
		"Latency of LoggedSystemState INSERT statements (single-row and batched).",
		telemetry.DurationBuckets)
)
