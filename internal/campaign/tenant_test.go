package campaign

import (
	"path/filepath"
	"testing"
	"time"

	"goofi/internal/sqldb"
)

// putTestCampaign seeds st with the shared test target and campaign
// (campaign_test.go helpers) under the name "camp-1".
func putTestCampaign(t *testing.T, st *Store) {
	t.Helper()
	if err := st.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(testCampaign()); err != nil {
		t.Fatal(err)
	}
}

func TestTenantNamesValidated(t *testing.T) {
	good := []string{"alice", "team-a", "a.b", "X_1"}
	bad := []string{"", ".", "..", "../alice", "a/b", "a\\b", "-x", ".hidden", "a b"}
	for _, n := range good {
		if !ValidTenant(n) {
			t.Errorf("ValidTenant(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidTenant(n) {
			t.Errorf("ValidTenant(%q) = true, want false", n)
		}
	}
}

func TestTenantDBsIsolateAndReuse(t *testing.T) {
	mgr, err := NewTenantDBs(t.TempDir(), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	stA, _, relA, err := mgr.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	stB, _, relB, err := mgr.Acquire("bob")
	if err != nil {
		t.Fatal(err)
	}
	putTestCampaign(t, stA)
	// Namespaces are separate databases: bob does not see alice's row.
	if _, err := stB.GetCampaign("camp-1"); err == nil {
		t.Fatal("tenant bob sees tenant alice's campaign")
	}
	// A second acquire of the same tenant shares the open handle.
	stA2, _, relA2, err := mgr.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	if stA2 != stA {
		t.Error("second acquire opened a second store for the same tenant")
	}
	relA()
	relA2()
	relB()
	names, err := mgr.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Errorf("tenants = %v, want [alice bob]", names)
	}
	if _, _, _, err := mgr.Acquire("../evil"); err == nil {
		t.Fatal("path-escaping tenant name accepted")
	}
}

// TestTenantCloseDrainsActiveRefs pins the shutdown drain barrier: Close
// must refuse new pins immediately but block until every outstanding pin
// is released, so a writer mid-batch never sees its database yanked away.
// Run under -race this also exercises the sweeper/close interleaving.
func TestTenantCloseDrainsActiveRefs(t *testing.T) {
	mgr, err := NewTenantDBs(t.TempDir(), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	st, _, release, err := mgr.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	closed := make(chan error, 1)
	go func() { closed <- mgr.Close() }()
	go func() {
		// Writes through a live pin while Close is pending must succeed.
		time.Sleep(20 * time.Millisecond)
		putTestCampaign(t, st)
		close(released)
		release()
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a pin was outstanding")
	case <-time.After(10 * time.Millisecond):
	}
	// New pins are refused as soon as Close begins.
	if _, _, _, err := mgr.Acquire("bob"); err == nil {
		t.Fatal("Acquire succeeded after Close started")
	}
	select {
	case err := <-closed:
		select {
		case <-released:
		default:
			t.Fatal("Close returned before the pin was released")
		}
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the pin was released")
	}
}

func TestTenantCompactIdle(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewTenantDBs(dir, sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	now := time.Now()
	mgr.nowFunc = func() time.Time { return now }
	st, db, release, err := mgr.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	putTestCampaign(t, st)
	// Pinned: not compacted regardless of idle time.
	now = now.Add(time.Hour)
	if n, err := mgr.CompactIdle(time.Minute); err != nil || n != 0 {
		t.Fatalf("compact pinned = %d, %v; want 0, nil", n, err)
	}
	release()
	// Recently released: still inside the idle window.
	if n, err := mgr.CompactIdle(time.Minute); err != nil || n != 0 {
		t.Fatalf("compact fresh = %d, %v; want 0, nil", n, err)
	}
	if !db.Dirty() {
		t.Fatal("db with un-checkpointed writes should be dirty")
	}
	now = now.Add(time.Hour)
	if n, err := mgr.CompactIdle(time.Minute); err != nil || n != 1 {
		t.Fatalf("compact idle = %d, %v; want 1, nil", n, err)
	}
	// The checkpoint folded the WAL into the snapshot: reopening reads
	// the row straight from the image and the log is reset.
	db2, err := sqldb.OpenAt(filepath.Join(dir, "alice.db"), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Dirty() {
		t.Error("compacted db reopened dirty")
	}
	st2, err := NewStore(db2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.GetCampaign("camp-1"); err != nil {
		t.Errorf("campaign lost by compaction: %v", err)
	}
}
