// Package campaign defines GOOFI's persistent data model: the target
// system configuration produced in the configuration phase (paper Fig 5),
// the campaign definition produced in the set-up phase (Fig 6), and the
// logged experiment records — mirroring the three database tables
// TargetSystemData, CampaignData and LoggedSystemState with their foreign
// keys (Fig 4).
package campaign

import (
	"encoding/json"
	"fmt"

	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/trigger"
)

// TargetSystemData describes one configured target system: its test card
// and the scan-chain maps entered in the configuration phase.
type TargetSystemData struct {
	// Name identifies the target system (primary key).
	Name string `json:"name"`
	// TestCardName identifies the host test card driving the target.
	TestCardName string `json:"testCardName"`
	// Chains are the configured scan chains with their named locations.
	Chains []scanchain.Map `json:"chains"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
}

// Validate checks the target system data.
func (t *TargetSystemData) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("campaign: target system needs a name")
	}
	if len(t.Chains) == 0 {
		return fmt.Errorf("campaign: target system %q has no scan chains", t.Name)
	}
	seen := make(map[string]bool)
	for i := range t.Chains {
		m := &t.Chains[i]
		if seen[m.Chain] {
			return fmt.Errorf("campaign: duplicate chain %q in target %q", m.Chain, t.Name)
		}
		seen[m.Chain] = true
		if err := m.Validate(); err != nil {
			return fmt.Errorf("campaign: target %q: %w", t.Name, err)
		}
	}
	return nil
}

// Chain returns the named scan-chain map.
func (t *TargetSystemData) Chain(name string) (*scanchain.Map, error) {
	for i := range t.Chains {
		if t.Chains[i].Chain == name {
			return &t.Chains[i], nil
		}
	}
	return nil, fmt.Errorf("campaign: target %q has no chain %q", t.Name, name)
}

// Termination gives the conditions ending one experiment: "a time-out
// value has been reached, an error has been detected or the execution of
// the workload ends, whichever comes first" (paper §3.2), plus a maximum
// iteration count for infinite-loop workloads.
type Termination struct {
	// TimeoutCycles ends the experiment after this many cycles.
	TimeoutCycles uint64 `json:"timeoutCycles"`
	// MaxIterations ends an infinite-loop workload after this many
	// completed iterations (0 = run to HALT).
	MaxIterations int `json:"maxIterations,omitempty"`
}

// Validate checks the termination spec.
func (t *Termination) Validate() error {
	if t.TimeoutCycles == 0 {
		return fmt.Errorf("campaign: termination needs a timeout")
	}
	return nil
}

// WorkloadSpec names the target system workload and how to observe it.
type WorkloadSpec struct {
	// Name identifies the workload.
	Name string `json:"name"`
	// Source is THOR-S assembly, assembled at load time. Storing source
	// keeps the campaign data portable across hosts.
	Source string `json:"source"`
	// InputPort and OutputPort carry environment-simulator data
	// (paper §3.2: memory locations / ports holding input and output).
	InputPort  uint16 `json:"inputPort"`
	OutputPort uint16 `json:"outputPort"`
	// ResultSymbols are data symbols whose memory is read back after the
	// experiment (the readMemory building block).
	ResultSymbols []string `json:"resultSymbols,omitempty"`
	// ResultWords is the number of words read per result symbol
	// (default 1).
	ResultWords int `json:"resultWords,omitempty"`
	// DeadlineCycles is the per-experiment deadline for timeliness
	// checks; 0 disables the check.
	DeadlineCycles uint64 `json:"deadlineCycles,omitempty"`
	// OutputTail restricts the escaped-error output comparison to the
	// last N output values (0 = compare everything exactly). Control
	// workloads use it so that transient deviations the controller
	// recovers from are not counted as critical failures.
	OutputTail int `json:"outputTail,omitempty"`
	// OutputTolerance is the per-value absolute tolerance (interpreted
	// as int32) for the output comparison.
	OutputTolerance uint32 `json:"outputTolerance,omitempty"`
	// ResultTolerance is the per-word absolute tolerance for result
	// memory comparison (words are big-endian int32).
	ResultTolerance uint32 `json:"resultTolerance,omitempty"`
	// RecoveryHandlers maps trap codes to handler symbols, enabling
	// best-effort recovery from executable assertions.
	RecoveryHandlers map[uint16]string `json:"recoveryHandlers,omitempty"`
}

// EnvSimSpec selects a registered environment simulator and its
// parameters (paper §3.2: "a user provided environment simulator").
type EnvSimSpec struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// LogMode selects how much system state is logged (paper §3.3).
type LogMode string

// Logging modes.
const (
	// LogNormal logs the system state only when the termination
	// condition is fulfilled.
	LogNormal LogMode = "normal"
	// LogDetail logs the system state after every machine instruction,
	// producing an execution trace for error-propagation analysis.
	LogDetail LogMode = "detail"
)

// Campaign is one fault injection campaign definition (the CampaignData
// table row).
type Campaign struct {
	// Name identifies the campaign (primary key).
	Name string `json:"name"`
	// TargetName references the TargetSystemData row (foreign key).
	TargetName string `json:"targetName"`
	// ChainName selects which scan chain faults are injected into.
	ChainName string `json:"chainName"`
	// Locations are names or dotted prefixes selecting fault injection
	// locations from the chain's hierarchical list (Fig 6).
	Locations []string `json:"locations"`
	// Observe selects the locations logged in system state vectors
	// (empty = whole chain).
	Observe []string `json:"observe,omitempty"`
	// FaultModel is the fault model selection.
	FaultModel faultmodel.Spec `json:"faultModel"`
	// Trigger gives the injection time. When RandomWindow is set the
	// trigger kind must be "cycle" and each experiment draws a uniform
	// cycle in [RandomWindow[0], RandomWindow[1]).
	Trigger      trigger.Spec `json:"trigger"`
	RandomWindow [2]uint64    `json:"randomWindow,omitempty"`
	// NumExperiments is the number of faults to inject.
	NumExperiments int `json:"numExperiments"`
	// Seed drives all campaign randomness; same seed, same campaign.
	Seed int64 `json:"seed"`
	// Termination ends each experiment.
	Termination Termination `json:"termination"`
	// Workload is the target program.
	Workload WorkloadSpec `json:"workload"`
	// EnvSim optionally closes the loop around the workload.
	EnvSim *EnvSimSpec `json:"envSim,omitempty"`
	// LogMode selects normal or detail logging.
	LogMode LogMode `json:"logMode"`
}

// Validate checks the campaign definition.
func (c *Campaign) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("campaign: campaign needs a name")
	}
	if c.TargetName == "" {
		return fmt.Errorf("campaign %q: needs a target system", c.Name)
	}
	if len(c.Locations) == 0 {
		return fmt.Errorf("campaign %q: no fault injection locations selected", c.Name)
	}
	if err := c.FaultModel.Validate(); err != nil {
		return fmt.Errorf("campaign %q: %w", c.Name, err)
	}
	if c.NumExperiments <= 0 {
		return fmt.Errorf("campaign %q: needs a positive number of experiments", c.Name)
	}
	if err := c.Termination.Validate(); err != nil {
		return fmt.Errorf("campaign %q: %w", c.Name, err)
	}
	if c.Workload.Source == "" {
		return fmt.Errorf("campaign %q: workload has no source", c.Name)
	}
	if c.RandomWindow[1] > 0 {
		if c.Trigger.Kind != "cycle" {
			return fmt.Errorf("campaign %q: random time window requires a cycle trigger", c.Name)
		}
		if c.RandomWindow[1] <= c.RandomWindow[0] {
			return fmt.Errorf("campaign %q: empty random time window", c.Name)
		}
	} else if _, err := c.Trigger.Build(); err != nil {
		return fmt.Errorf("campaign %q: %w", c.Name, err)
	}
	switch c.LogMode {
	case LogNormal, LogDetail:
	case "":
		return fmt.Errorf("campaign %q: log mode not set", c.Name)
	default:
		return fmt.Errorf("campaign %q: unknown log mode %q", c.Name, c.LogMode)
	}
	return nil
}

// OutcomeStatus summarises how an experiment ended.
type OutcomeStatus string

// Experiment end states.
const (
	// OutcomeCompleted means the workload ran to normal termination.
	OutcomeCompleted OutcomeStatus = "completed"
	// OutcomeDetected means an error detection mechanism fired.
	OutcomeDetected OutcomeStatus = "detected"
	// OutcomeTimeout means the time-out termination condition fired.
	OutcomeTimeout OutcomeStatus = "timeout"
	// OutcomeInvalidRun means the experiment could not be completed
	// because the test harness itself failed (board wedge, scan
	// corruption, host fault) even after the configured retries. The
	// record preserves the planned injection so the experiment can be
	// re-attempted, but carries no usable system state; analysis excludes
	// invalid runs from all effectiveness ratios (the paper's discarded
	// experiments).
	OutcomeInvalidRun OutcomeStatus = "invalid-run"

	// The live-process (proctarget) outcome taxonomy, after ZOFI: the
	// victim is a real OS process, so termination is classified from its
	// exit status and output rather than from simulated detectors.
	//
	// OutcomeMasked: the victim exited 0 and its stdout matched the
	// fault-free reference capture byte for byte — the fault had no
	// externally visible effect.
	OutcomeMasked OutcomeStatus = "masked"
	// OutcomeSDC: the victim exited 0 but produced different output —
	// silent data corruption.
	OutcomeSDC OutcomeStatus = "sdc"
	// OutcomeCrash: the victim died on a signal or exited non-zero.
	OutcomeCrash OutcomeStatus = "crash"
	// OutcomeHang: the victim exceeded its wall-clock budget and was
	// killed by the watchdog.
	OutcomeHang OutcomeStatus = "hang"
)

// Outcome is the recorded end state of one experiment.
type Outcome struct {
	Status OutcomeStatus `json:"status"`
	// Mechanism names the EDM for detected outcomes.
	Mechanism string `json:"mechanism,omitempty"`
	// DetectionCycle is when the EDM fired.
	DetectionCycle uint64 `json:"detectionCycle,omitempty"`
	// Cycles is the total cycle count at termination.
	Cycles uint64 `json:"cycles"`
	// Iterations is the number of completed workload iterations.
	Iterations int `json:"iterations,omitempty"`
	// Recovered counts assertion failures that were recovered from.
	Recovered int `json:"recovered,omitempty"`
	// Attempts is how many times the experiment was executed before this
	// outcome was recorded (0 means one attempt and is omitted; invalid
	// runs record the full attempt count).
	Attempts int `json:"attempts,omitempty"`
	// HarnessError describes the final harness failure of an invalid run.
	HarnessError string `json:"harnessError,omitempty"`
}

// ExperimentData is the experimentData attribute of a LoggedSystemState
// row: everything about the injection and how the run ended.
type ExperimentData struct {
	Seq            int              `json:"seq"`
	Fault          faultmodel.Fault `json:"fault"`
	LocationNames  []string         `json:"locationNames,omitempty"`
	Trigger        trigger.Spec     `json:"trigger"`
	InjectionCycle uint64           `json:"injectionCycle,omitempty"`
	Injected       bool             `json:"injected"`
	Outcome        Outcome          `json:"outcome"`
}

// StateVector is the logged system state: the observable scan-chain
// contents, the observed result memory, and the workload outputs. It is
// stored as the stateVector BLOB.
type StateVector struct {
	Scan    []byte              `json:"scan,omitempty"` // bitvec marshaled
	Memory  map[string][]byte   `json:"memory,omitempty"`
	Outputs map[uint16][]uint32 `json:"outputs,omitempty"`
}

// Encode serialises the state vector for storage. The output is the
// json.Marshal encoding, produced by the hand-rolled appender in
// codec.go (this runs once per experiment on the storage hot path).
func (s *StateVector) Encode() ([]byte, error) {
	return s.appendJSON(make([]byte, 0, 256)), nil
}

// DecodeStateVector parses a stored state vector.
func DecodeStateVector(b []byte) (*StateVector, error) {
	var s StateVector
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("campaign: decode state vector: %w", err)
	}
	return &s, nil
}

// ExperimentRecord is one LoggedSystemState row.
type ExperimentRecord struct {
	// Name uniquely identifies the experiment ("experimentName").
	Name string
	// Parent tracks re-runs of earlier experiments ("parentExperiment",
	// paper §2.3): a detail-mode re-run of experiment E1 records E1 here
	// so E1's campaign data can be tracked.
	Parent string
	// Campaign references the CampaignData row.
	Campaign string
	// Data is the experiment metadata.
	Data ExperimentData
	// State is the logged state vector.
	State StateVector
	// Step is -1 for end-of-experiment records; detail-mode trace
	// records use the instruction index.
	Step int
}

// IsReference reports whether the record is the campaign's fault-free
// reference run.
func (r *ExperimentRecord) IsReference() bool { return r.Data.Seq < 0 }

// ReferenceName returns the canonical experiment name of a campaign's
// reference run.
func ReferenceName(campaignName string) string { return campaignName + "/reference" }

// ExperimentName returns the canonical name of the i-th experiment.
func ExperimentName(campaignName string, i int) string {
	return fmt.Sprintf("%s/exp%05d", campaignName, i)
}
