package campaign

import (
	"fmt"
	"sync"
)

// BatchingSink decouples experiment execution from storage latency: result
// records accumulate in memory and a background goroutine writes them to
// the Store in transaction-sized multi-row INSERT batches. The scheduler
// flushes at checkpoints and on termination, so a pause or a finished
// campaign is always durable.
//
// A failed batch poisons the sink: the first error is retained and
// returned by every later LogExperiment/Flush call, which is how an
// asynchronous write failure reaches the campaign's error path.
type BatchingSink struct {
	store     *Store
	batchSize int

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []*ExperimentRecord
	pending int // batches handed to the writer, not yet durable
	err     error
	closed  bool

	work chan []*ExperimentRecord
	done chan struct{}
}

// DefaultBatchSize is how many LoggedSystemState rows a BatchingSink
// groups into one INSERT unless configured otherwise.
const DefaultBatchSize = 64

// NewBatchingSink starts a sink over the store. batchSize <= 0 selects
// DefaultBatchSize. Close (or at least Flush) the sink before reading the
// campaign's results from the store directly.
func NewBatchingSink(store *Store, batchSize int) *BatchingSink {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	s := &BatchingSink{
		store:     store,
		batchSize: batchSize,
		work:      make(chan []*ExperimentRecord, 4),
		done:      make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.writer()
	return s
}

func (s *BatchingSink) writer() {
	defer close(s.done)
	for batch := range s.work {
		err := s.store.LogExperimentBatch(batch)
		s.mu.Lock()
		if err != nil && s.err == nil {
			s.err = err
		}
		s.pending--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// LogExperiment queues one record. The write happens in the background;
// an error reported here is a prior batch's failure.
func (s *BatchingSink) LogExperiment(r *ExperimentRecord) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("campaign: sink is closed")
	}
	s.buf = append(s.buf, r)
	mSinkRecords.Inc()
	if len(s.buf) < s.batchSize {
		s.mu.Unlock()
		return nil
	}
	batch := s.buf
	s.buf = nil
	s.pending++
	s.mu.Unlock()
	mSinkBatches.Inc()
	s.work <- batch
	return nil
}

// Flush submits the partial batch and blocks until every queued record is
// durable (or a write failed).
func (s *BatchingSink) Flush() error {
	mSinkFlushes.Inc()
	s.mu.Lock()
	if len(s.buf) > 0 && !s.closed {
		batch := s.buf
		s.buf = nil
		s.pending++
		s.mu.Unlock()
		mSinkBatches.Inc()
		s.work <- batch
		s.mu.Lock()
	}
	for s.pending > 0 {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// GetExperiment reads a record through the store, flushing first so the
// sink's own queued writes are visible (read-your-writes).
func (s *BatchingSink) GetExperiment(name string) (*ExperimentRecord, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s.store.GetExperiment(name)
}

// SaveCheckpoint flushes every queued record and then stores the
// campaign cursor. The ordering is the crash-safety invariant: a durable
// cursor always implies its experiments are durable, so resume never
// skips an experiment that was lost in flight.
func (s *BatchingSink) SaveCheckpoint(cp *Checkpoint) error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.store.SaveCheckpoint(cp)
}

// Close flushes outstanding records and stops the writer goroutine. The
// sink rejects further records after Close.
func (s *BatchingSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	close(s.work)
	<-s.done
	return err
}
