package campaign

import (
	"reflect"
	"testing"

	"goofi/internal/telemetry"
)

func testSpans() []telemetry.SpanRecord {
	return []telemetry.SpanRecord{
		{Phase: "plan", Board: -1, Seq: -1, WallNS: 120_000},
		{Phase: "reference", Board: -1, Seq: -1, EndCycle: 1800, WallNS: 950_000},
		{Phase: "experiment", Board: 0, Seq: 0, StartCycle: 400, EndCycle: 2100, WallNS: 310_000},
		{Phase: "experiment", Board: 1, Seq: 1, StartCycle: 0, EndCycle: 1900, WallNS: 620_000},
		{Phase: "invalid", Board: 0, Seq: 2, WallNS: 80_000},
	}
}

// TestTelemetryRoundTrip: spans survive the CampaignTelemetry table
// byte-for-byte and DeleteTelemetry clears them for a fresh run.
func TestTelemetryRoundTrip(t *testing.T) {
	st := sinkFixture(t)
	spans := testSpans()
	if err := st.LogTelemetry("camp-1", spans); err != nil {
		t.Fatal(err)
	}
	got, err := st.TelemetrySpans("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spans) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", got, spans)
	}
	// Other campaigns' spans are invisible.
	other, err := st.TelemetrySpans("no-such-campaign")
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 0 {
		t.Errorf("foreign campaign sees %d spans", len(other))
	}
	if err := st.DeleteTelemetry("camp-1"); err != nil {
		t.Fatal(err)
	}
	got, err = st.TelemetrySpans("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("DeleteTelemetry left %d spans", len(got))
	}
}

// TestLogTelemetryEmpty: storing no spans is a no-op, not an invalid
// INSERT.
func TestLogTelemetryEmpty(t *testing.T) {
	st := sinkFixture(t)
	if err := st.LogTelemetry("camp-1", nil); err != nil {
		t.Fatal(err)
	}
}
