package campaign

// Tenant namespaces: the daemon serves many users from one data
// directory by giving each tenant its own WAL-backed database file,
// lazily opened on first use, reference-counted while campaigns run
// against it, and compacted back into its snapshot when it falls idle.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"goofi/internal/sqldb"
)

// TenantDBs manages one *sqldb.DB per tenant under a data directory.
// All methods are safe for concurrent use.
type TenantDBs struct {
	dir    string
	policy sqldb.SyncPolicy

	mu      sync.Mutex
	drained *sync.Cond // broadcast when a ref is released (Close drain barrier)
	open    map[string]*tenantHandle
	closed  bool
	nowFunc func() time.Time // test hook
}

type tenantHandle struct {
	store   *Store
	db      *sqldb.DB
	refs    int
	lastUse time.Time
}

// NewTenantDBs builds a manager rooted at dir (created if missing).
func NewTenantDBs(dir string, policy sqldb.SyncPolicy) (*TenantDBs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: tenant dir: %w", err)
	}
	t := &TenantDBs{dir: dir, policy: policy, open: make(map[string]*tenantHandle),
		nowFunc: time.Now}
	t.drained = sync.NewCond(&t.mu)
	return t, nil
}

// ValidTenant reports whether name is usable as a tenant namespace: a
// non-empty name made of letters, digits, dots, underscores and dashes,
// not starting with a dot or dash. The character set keeps tenant names
// inside a single path element, so a hostile name cannot escape the
// data directory.
func ValidTenant(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_':
		case (c == '-' || c == '.') && i > 0:
		default:
			return false
		}
	}
	return true
}

// Path returns the tenant's database file path.
func (t *TenantDBs) Path(tenant string) string {
	return filepath.Join(t.dir, tenant+".db")
}

// Acquire opens (or reuses) the tenant's database and pins it open. The
// returned release must be called when the caller is done; the handle
// stays cached for reuse until idle compaction closes it.
func (t *TenantDBs) Acquire(tenant string) (*Store, *sqldb.DB, func(), error) {
	if !ValidTenant(tenant) {
		return nil, nil, nil, fmt.Errorf("campaign: invalid tenant name %q", tenant)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil, nil, fmt.Errorf("campaign: tenant manager closed")
	}
	h := t.open[tenant]
	if h == nil {
		db, err := sqldb.OpenAt(t.Path(tenant), t.policy)
		if err != nil {
			return nil, nil, nil, err
		}
		st, err := NewStore(db)
		if err != nil {
			db.Close()
			return nil, nil, nil, err
		}
		h = &tenantHandle{store: st, db: db}
		t.open[tenant] = h
	}
	h.refs++
	h.lastUse = t.nowFunc()
	release := func() {
		t.mu.Lock()
		h.refs--
		h.lastUse = t.nowFunc()
		if h.refs == 0 {
			// Wake a Close blocked on the drain barrier.
			t.drained.Broadcast()
		}
		t.mu.Unlock()
	}
	return h.store, h.db, release, nil
}

// Tenants lists every tenant with a database file on disk, open or not.
func (t *TenantDBs) Tenants() ([]string, error) {
	ents, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: list tenants: %w", err)
	}
	// A tenant that has never been checkpointed exists only as its WAL
	// (the snapshot file appears on first compaction), so both spellings
	// count.
	seen := make(map[string]bool)
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(strings.TrimSuffix(e.Name(), ".wal"), ".db")
		if ok && ValidTenant(name) {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// CompactIdle checkpoints and closes every unpinned tenant database that
// has been idle for at least maxIdle. Clean databases (nothing in the
// WAL) are closed without the checkpoint. It returns how many databases
// were closed.
func (t *TenantDBs) CompactIdle(maxIdle time.Duration) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var firstErr error
	closed := 0
	now := t.nowFunc()
	for name, h := range t.open {
		if h.refs > 0 || now.Sub(h.lastUse) < maxIdle {
			continue
		}
		if h.db.Dirty() {
			if err := h.db.Checkpoint(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue // keep a db we failed to compact open
			}
		}
		if err := h.db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.open, name)
		closed++
	}
	return closed, firstErr
}

// Close checkpoints and closes every open tenant database. It is a
// drain barrier: new Acquires fail immediately, and Close blocks until
// every outstanding pin has been released, so a database is never
// checkpointed or closed while a campaign (or a shard merge) is still
// writing through it. The idle-compaction sweeper takes the same lock
// and skips pinned handles, so it cannot close a database Close is
// draining toward.
func (t *TenantDBs) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Flag first: Acquire refuses new pins while Close waits for the
	// existing ones to drain.
	t.closed = true
	for {
		busy := 0
		for _, h := range t.open {
			busy += h.refs
		}
		if busy == 0 {
			break
		}
		t.drained.Wait()
	}
	var firstErr error
	for name, h := range t.open {
		if h.db.Dirty() {
			if err := h.db.Checkpoint(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := h.db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.open, name)
	}
	return firstErr
}
