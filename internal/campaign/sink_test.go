package campaign

import (
	"sync"
	"testing"
)

func sinkFixture(t *testing.T) *Store {
	t.Helper()
	st := newStore(t)
	if err := st.PutTargetSystem(testTarget()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(testCampaign()); err != nil {
		t.Fatal(err)
	}
	return st
}

func sinkRecord(i int) *ExperimentRecord {
	return &ExperimentRecord{
		Name:     ExperimentName("camp-1", i),
		Campaign: "camp-1",
		Step:     -1,
	}
}

func TestBatchingSinkFlushMakesRecordsVisible(t *testing.T) {
	st := sinkFixture(t)
	s := NewBatchingSink(st, 10)
	for i := 0; i < 25; i++ {
		if err := s.LogExperiment(sinkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Errorf("after flush: %d records, want 25", len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close rejects further records.
	if err := s.LogExperiment(sinkRecord(99)); err == nil {
		t.Error("log after close accepted")
	}
}

func TestBatchingSinkGetExperimentReadsOwnWrites(t *testing.T) {
	st := sinkFixture(t)
	s := NewBatchingSink(st, 1000) // never fills on its own
	defer s.Close()
	if err := s.LogExperiment(sinkRecord(0)); err != nil {
		t.Fatal(err)
	}
	rec, err := s.GetExperiment(ExperimentName("camp-1", 0))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != ExperimentName("camp-1", 0) {
		t.Errorf("got %q", rec.Name)
	}
}

func TestBatchingSinkErrorPoisons(t *testing.T) {
	st := sinkFixture(t)
	s := NewBatchingSink(st, 2)
	// A record violating the campaign FK fails the batch write.
	bad := &ExperimentRecord{Name: "x/exp", Campaign: "missing", Step: -1}
	_ = s.LogExperiment(bad)
	_ = s.LogExperiment(sinkRecord(1)) // completes the batch, triggers the write
	if err := s.Flush(); err == nil {
		t.Fatal("flush after failed batch returned nil")
	}
	// The error is sticky.
	if err := s.LogExperiment(sinkRecord(2)); err == nil {
		t.Error("poisoned sink accepted a record")
	}
	if err := s.Close(); err == nil {
		t.Error("poisoned sink closed without error")
	}
}

func TestBatchingSinkConcurrentProducers(t *testing.T) {
	st := sinkFixture(t)
	s := NewBatchingSink(st, 7)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.LogExperiment(sinkRecord(w*50 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Errorf("stored %d records, want 200", len(recs))
	}
}
