package envsim

import (
	"reflect"
	"testing"
)

// drive advances a simulator n steps with a deterministic command stream
// and returns the produced inputs.
func drive(sim Simulator, from, n int) [][]uint32 {
	var got [][]uint32
	for i := from; i < from+n; i++ {
		var outs []uint32
		if i > 0 {
			outs = []uint32{uint32(i * 100)}
		}
		got = append(got, sim.Exchange(outs))
	}
	return got
}

func TestSnapshotRestoreAllSimulators(t *testing.T) {
	reg := NewRegistry()
	for _, name := range reg.Names() {
		t.Run(name, func(t *testing.T) {
			sim, err := reg.New(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			ss, ok := sim.(Snapshotter)
			if !ok {
				t.Fatalf("built-in simulator %q does not implement Snapshotter", name)
			}
			drive(sim, 0, 5)
			state := ss.SnapshotState()
			want := drive(sim, 5, 10)

			// Restoring onto a fresh instance replays the same future.
			fresh, err := reg.New(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.(Snapshotter).RestoreState(state); err != nil {
				t.Fatal(err)
			}
			if got := drive(fresh, 5, 10); !reflect.DeepEqual(want, got) {
				t.Errorf("restored %q diverged:\nwant %v\ngot  %v", name, want, got)
			}
		})
	}
}

func TestSnapshotStateImmutable(t *testing.T) {
	reg := NewRegistry()
	for _, name := range reg.Names() {
		t.Run(name, func(t *testing.T) {
			sim, _ := reg.New(name, nil)
			ss := sim.(Snapshotter)
			drive(sim, 0, 3)
			state := ss.SnapshotState()
			want := drive(sim, 3, 4) // advances the live simulator

			// The captured state must not have moved with it: two fresh
			// instances restored from it behave identically.
			a, _ := reg.New(name, nil)
			b, _ := reg.New(name, nil)
			if err := a.(Snapshotter).RestoreState(state); err != nil {
				t.Fatal(err)
			}
			if err := b.(Snapshotter).RestoreState(state); err != nil {
				t.Fatal(err)
			}
			ga, gb := drive(a, 3, 4), drive(b, 3, 4)
			if !reflect.DeepEqual(ga, gb) {
				t.Errorf("two restores diverged: %v vs %v", ga, gb)
			}
			if !reflect.DeepEqual(ga, want) {
				t.Errorf("restore after advance diverged: want %v got %v", want, ga)
			}
		})
	}
}

// TestReplayFallbackEquivalence mirrors the runner's fallback for
// simulators without snapshot support: replaying the logged Exchange
// calls against a fresh instance must reproduce the same state as a
// direct snapshot restore.
func TestReplayFallbackEquivalence(t *testing.T) {
	reg := NewRegistry()
	for _, name := range reg.Names() {
		t.Run(name, func(t *testing.T) {
			recorded, _ := reg.New(name, nil)
			var log [][]uint32
			for i := 0; i < 6; i++ {
				var outs []uint32
				if i > 0 {
					outs = []uint32{uint32(i * 77)}
				}
				log = append(log, outs)
				recorded.Exchange(outs)
			}
			want := drive(recorded, 6, 5)

			replayed, _ := reg.New(name, nil)
			for _, outs := range log {
				replayed.Exchange(outs)
			}
			if got := drive(replayed, 6, 5); !reflect.DeepEqual(want, got) {
				t.Errorf("replayed %q diverged:\nwant %v\ngot  %v", name, want, got)
			}
		})
	}
}
