package envsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{"engine", "first-order-plant", "scripted"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, n := range want {
		sim, err := r.New(n, nil)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if sim.Name() != n {
			t.Errorf("Name() = %q, want %q", sim.Name(), n)
		}
	}
	if _, err := r.New("ghost", nil); err == nil {
		t.Error("unknown simulator accepted")
	}
}

func TestRegistryCustomRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", func() Simulator { return &Scripted{} })
	if _, err := r.New("custom", nil); err != nil {
		t.Error(err)
	}
}

func TestScriptedReplaysSequence(t *testing.T) {
	s := &Scripted{}
	s.Reset(map[string]float64{"count": 3, "start": 10, "stepSize": 5})
	if got := s.Exchange(nil); got[0] != 10 {
		t.Errorf("input 0 = %d", got[0])
	}
	if got := s.Exchange([]uint32{77}); got[0] != 15 {
		t.Errorf("input 1 = %d", got[0])
	}
	if got := s.Exchange([]uint32{88}); got[0] != 20 {
		t.Errorf("input 2 = %d", got[0])
	}
	// Exhausted: returns 0.
	if got := s.Exchange(nil); got[0] != 0 {
		t.Errorf("exhausted input = %d", got[0])
	}
	if len(s.Outputs) != 2 || s.Outputs[0] != 77 || s.Outputs[1] != 88 {
		t.Errorf("recorded outputs = %v", s.Outputs)
	}
}

func TestFirstOrderPlantConvergesUnderIdealControl(t *testing.T) {
	p := &FirstOrderPlant{}
	p.Reset(map[string]float64{"setpoint": 50})
	inputs := p.Exchange(nil)
	if len(inputs) != 2 {
		t.Fatalf("inputs = %v", inputs)
	}
	if int32(inputs[1]) != p.Setpoint() {
		t.Errorf("setpoint input = %d, want %d", int32(inputs[1]), p.Setpoint())
	}
	// Ideal controller: command = setpoint.
	for i := 0; i < 100; i++ {
		inputs = p.Exchange([]uint32{uint32(p.Setpoint())})
	}
	sensor := float64(int32(inputs[0])) / 256
	if math.Abs(sensor-50) > 1 {
		t.Errorf("plant settled at %.2f, want ~50", sensor)
	}
	if len(p.History) != 101 {
		t.Errorf("history length = %d", len(p.History))
	}
}

func TestFirstOrderPlantNoInputHolds(t *testing.T) {
	p := &FirstOrderPlant{}
	p.Reset(map[string]float64{"x0": 10})
	// Exchange with no outputs does not move the state.
	in := p.Exchange(nil)
	if got := float64(int32(in[0])) / 256; math.Abs(got-10) > 0.01 {
		t.Errorf("state moved without input: %g", got)
	}
}

func TestEngineSpinsUpAndSaturates(t *testing.T) {
	e := &Engine{}
	e.Reset(map[string]float64{"setpoint": 120})
	in := e.Exchange(nil)
	if len(in) != 2 {
		t.Fatalf("inputs = %v", in)
	}
	// Constant full fuel: speed rises and is drag-limited.
	var speed float64
	fuel := uint32(uint16(200 * 256)) // large positive fuel command
	for i := 0; i < 2000; i++ {
		in = e.Exchange([]uint32{fuel})
		speed = float64(int32(in[0])) / 256
	}
	if speed <= 10 {
		t.Errorf("engine never spun up: %g", speed)
	}
	// Negative fuel cannot drive the speed below zero.
	e.Reset(nil)
	negFuel := int32(-100 * 256)
	neg := uint32(negFuel)
	for i := 0; i < 50; i++ {
		in = e.Exchange([]uint32{neg})
	}
	if got := int32(in[0]); got < 0 {
		t.Errorf("engine speed went negative: %d", got)
	}
}

func TestParamOr(t *testing.T) {
	if got := paramOr(nil, "x", 3); got != 3 {
		t.Errorf("default = %g", got)
	}
	if got := paramOr(map[string]float64{"x": 7}, "x", 3); got != 7 {
		t.Errorf("override = %g", got)
	}
}

// Property: plant dynamics are a contraction towards gain*u for constant
// input, so the state stays bounded by max(|x0|, |gain*u|).
func TestPropertyPlantBounded(t *testing.T) {
	f := func(x0Raw int16, uRaw int16) bool {
		x0 := float64(x0Raw) / 100
		u := float64(uRaw) / 100
		p := &FirstOrderPlant{}
		p.Reset(map[string]float64{"x0": x0})
		bound := math.Max(math.Abs(x0), math.Abs(u)) + 1
		cmd := uint32(int32(u * 256))
		for i := 0; i < 200; i++ {
			p.Exchange([]uint32{cmd})
			if math.Abs(p.State()) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
