package envsim

import "fmt"

// Snapshotter is an optional Simulator extension for campaign
// checkpoint-forwarding: a simulator that can capture and restore its
// internal state lets the runner resume a checkpointed run mid-stream.
// Simulators that do not implement it are handled by deterministic
// replay: the recorded Exchange calls of the fault-free prefix are
// replayed against a fresh instance (which is exact for any simulator
// whose Exchange is a pure function of its state and inputs). All
// built-in simulators implement Snapshotter directly.
type Snapshotter interface {
	// SnapshotState returns an opaque deep copy of the simulator state.
	// The returned value must stay valid (immutable) even as the
	// simulator advances.
	SnapshotState() any
	// RestoreState overwrites the simulator state with a value returned
	// by SnapshotState on an instance of the same type. The same state
	// value may be restored onto many instances.
	RestoreState(state any) error
}

// SnapshotState implements Snapshotter.
func (s *Scripted) SnapshotState() any {
	return &Scripted{
		inputs:  s.inputs, // immutable after Reset
		pos:     s.pos,
		Outputs: append([]uint32(nil), s.Outputs...),
	}
}

// RestoreState implements Snapshotter.
func (s *Scripted) RestoreState(state any) error {
	o, ok := state.(*Scripted)
	if !ok {
		return fmt.Errorf("envsim: scripted restore from %T", state)
	}
	s.inputs = o.inputs
	s.pos = o.pos
	s.Outputs = append([]uint32(nil), o.Outputs...)
	return nil
}

// SnapshotState implements Snapshotter.
func (p *FirstOrderPlant) SnapshotState() any {
	c := *p
	c.History = append([]float64(nil), p.History...)
	return &c
}

// RestoreState implements Snapshotter.
func (p *FirstOrderPlant) RestoreState(state any) error {
	o, ok := state.(*FirstOrderPlant)
	if !ok {
		return fmt.Errorf("envsim: first-order-plant restore from %T", state)
	}
	*p = *o
	p.History = append([]float64(nil), o.History...)
	return nil
}

// SnapshotState implements Snapshotter.
func (e *Engine) SnapshotState() any {
	c := *e
	c.History = append([]float64(nil), e.History...)
	return &c
}

// RestoreState implements Snapshotter.
func (e *Engine) RestoreState(state any) error {
	o, ok := state.(*Engine)
	if !ok {
		return fmt.Errorf("envsim: engine restore from %T", state)
	}
	*e = *o
	e.History = append([]float64(nil), o.History...)
	return nil
}
