// Package envsim provides environment simulators: host-side models of the
// target system's physical environment that exchange data with the
// workload at each loop iteration (paper §3.2 and Fig 1, "Workload /
// Environment Simulator"). A control workload reads sensor values from an
// input port and writes actuator commands to an output port; the simulator
// closes the loop.
package envsim

import (
	"fmt"
	"sort"
)

// Simulator is one environment model. Exchange is called once per
// workload iteration with the values the workload emitted; it returns the
// input values for the next iteration. The first call (before the first
// iteration) receives nil.
type Simulator interface {
	Name() string
	// Reset prepares the simulator with campaign parameters.
	Reset(params map[string]float64)
	// Exchange advances the environment by one step.
	Exchange(outputs []uint32) (inputs []uint32)
}

// Factory creates a fresh simulator instance.
type Factory func() Simulator

// Registry maps simulator names to factories. A fresh registry carries
// the built-in simulators; register additional ones per deployment.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry returns a registry with the built-in simulators:
// "scripted", "first-order-plant" and "engine".
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	r.Register("scripted", func() Simulator { return &Scripted{} })
	r.Register("first-order-plant", func() Simulator { return &FirstOrderPlant{} })
	r.Register("engine", func() Simulator { return &Engine{} })
	return r
}

// Register adds a factory; it replaces any previous registration.
func (r *Registry) Register(name string, f Factory) {
	r.factories[name] = f
}

// New instantiates and resets a simulator by name.
func (r *Registry) New(name string, params map[string]float64) (Simulator, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("envsim: no simulator %q (have %v)", name, r.Names())
	}
	sim := f()
	sim.Reset(params)
	return sim, nil
}

// Names lists the registered simulators.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scripted replays a fixed input sequence, one value per iteration, and
// records everything the workload emits. Parameters: "count" (number of
// scripted values, default 16), "start", "stepSize" (inputs are
// start + i*stepSize, default 1 and 1).
type Scripted struct {
	inputs  []uint32
	pos     int
	Outputs []uint32
}

// Name implements Simulator.
func (s *Scripted) Name() string { return "scripted" }

// Reset implements Simulator.
func (s *Scripted) Reset(params map[string]float64) {
	count := int(paramOr(params, "count", 16))
	start := paramOr(params, "start", 1)
	step := paramOr(params, "stepSize", 1)
	s.inputs = make([]uint32, count)
	for i := range s.inputs {
		s.inputs[i] = uint32(int32(start + float64(i)*step))
	}
	s.pos = 0
	s.Outputs = nil
}

// Exchange implements Simulator.
func (s *Scripted) Exchange(outputs []uint32) []uint32 {
	s.Outputs = append(s.Outputs, outputs...)
	if s.pos >= len(s.inputs) {
		return []uint32{0}
	}
	v := s.inputs[s.pos]
	s.pos++
	return []uint32{v}
}

// FirstOrderPlant is a discrete first-order system
//
//	x[k+1] = x[k] + dt/tau * (gain*u[k] - x[k])
//
// whose state is sampled as a fixed-point sensor value (Q8.8). The
// workload's job is to drive x to the setpoint. Parameters: "tau"
// (default 8), "dt" (1), "gain" (1), "setpoint" (100), "x0" (0).
type FirstOrderPlant struct {
	x, tau, dt, gain float64
	setpoint         float64
	History          []float64
}

// Name implements Simulator.
func (p *FirstOrderPlant) Name() string { return "first-order-plant" }

// Reset implements Simulator.
func (p *FirstOrderPlant) Reset(params map[string]float64) {
	p.tau = paramOr(params, "tau", 8)
	p.dt = paramOr(params, "dt", 1)
	p.gain = paramOr(params, "gain", 1)
	p.setpoint = paramOr(params, "setpoint", 100)
	p.x = paramOr(params, "x0", 0)
	p.History = nil
}

// Setpoint returns the commanded setpoint in sensor counts (Q8.8).
func (p *FirstOrderPlant) Setpoint() int32 { return int32(p.setpoint * 256) }

// State returns the current plant state.
func (p *FirstOrderPlant) State() float64 { return p.x }

// Exchange implements Simulator: outputs[0] is the actuator command in
// Q8.8; the returned inputs are [sensor, setpoint] in Q8.8.
func (p *FirstOrderPlant) Exchange(outputs []uint32) []uint32 {
	if len(outputs) > 0 {
		u := float64(int32(outputs[len(outputs)-1])) / 256
		p.x += p.dt / p.tau * (p.gain*u - p.x)
	}
	p.History = append(p.History, p.x)
	sensor := uint32(int32(p.x * 256))
	return []uint32{sensor, uint32(p.Setpoint())}
}

// Engine approximates a jet-engine speed loop: a second-order plant with
// inertia and drag, the workload commanding fuel flow. It reproduces the
// structure of the control application evaluated with GOOFI in the
// companion study [12]. Parameters: "inertia" (default 16), "drag"
// (0.05), "setpoint" (120), "x0" (0).
type Engine struct {
	speed, accel  float64
	inertia, drag float64
	setpoint      float64
	History       []float64
}

// Name implements Simulator.
func (e *Engine) Name() string { return "engine" }

// Reset implements Simulator.
func (e *Engine) Reset(params map[string]float64) {
	e.inertia = paramOr(params, "inertia", 16)
	e.drag = paramOr(params, "drag", 0.05)
	e.setpoint = paramOr(params, "setpoint", 120)
	e.speed = paramOr(params, "x0", 0)
	e.accel = 0
	e.History = nil
}

// Setpoint returns the commanded setpoint in sensor counts (Q8.8).
func (e *Engine) Setpoint() int32 { return int32(e.setpoint * 256) }

// State returns the current engine speed.
func (e *Engine) State() float64 { return e.speed }

// Exchange implements Simulator.
func (e *Engine) Exchange(outputs []uint32) []uint32 {
	if len(outputs) > 0 {
		fuel := float64(int32(outputs[len(outputs)-1])) / 256
		e.accel = (fuel - e.drag*e.speed*e.speed/100) / e.inertia * 4
		e.speed += e.accel
		if e.speed < 0 {
			e.speed = 0
		}
	}
	e.History = append(e.History, e.speed)
	sensor := uint32(int32(e.speed * 256))
	return []uint32{sensor, uint32(e.Setpoint())}
}

func paramOr(params map[string]float64, key string, def float64) float64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}
