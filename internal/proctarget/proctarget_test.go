package proctarget

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// victimBin builds (once per process) the named example victim and
// returns the binary path, skipping the test when ptrace is not usable
// here (non-linux, restricted container).
var victims = struct {
	sync.Mutex
	dir    string
	built  map[string]string
	probed map[string]error
}{built: make(map[string]string), probed: make(map[string]error)}

func victimBin(t *testing.T, name string) string {
	t.Helper()
	victims.Lock()
	defer victims.Unlock()
	if victims.dir == "" {
		dir, err := os.MkdirTemp("", "goofi-victims-")
		if err != nil {
			t.Fatal(err)
		}
		victims.dir = dir
	}
	bin, ok := victims.built[name]
	if !ok {
		_, thisFile, _, _ := runtime.Caller(0)
		root := filepath.Join(filepath.Dir(thisFile), "..", "..")
		bin = filepath.Join(victims.dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./examples/victims/"+name)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build victim %s: %v\n%s", name, err, out)
		}
		victims.built[name] = bin
	}
	probeErr, ok := victims.probed[bin]
	if !ok {
		probeErr = Probe(bin)
		victims.probed[bin] = probeErr
	}
	if probeErr != nil {
		t.Skipf("ptrace unavailable here: %v", probeErr)
	}
	return bin
}

// procCampaign builds a minimal campaign for direct algorithm runs.
func procCampaign(victim, chain string, timeoutUS uint64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:      "proc-test",
		ChainName: chain,
		Workload:  campaign.WorkloadSpec{Name: "victim:" + filepath.Base(victim), Source: victim},
		Termination: campaign.Termination{
			TimeoutCycles: timeoutUS,
		},
	}
}

// runExperiment drives one RuntimeSWIFI experiment directly.
func runExperiment(t *testing.T, tgt *Target, camp *campaign.Campaign, seq int,
	fault *faultmodel.Fault, budget uint64) *core.Experiment {
	t.Helper()
	ex := &core.Experiment{
		Campaign: camp,
		Seq:      seq,
		Name:     fmt.Sprintf("proc-test-%d", seq),
		Fault:    fault,
		Trigger:  trigger.Spec{Kind: "cycle", Cycle: budget},
		RNG:      rand.New(rand.NewSource(1)),
	}
	if err := core.RuntimeSWIFI.Run(tgt, ex); err != nil {
		t.Fatalf("experiment seq %d: %v", seq, err)
	}
	return ex
}

// memBit returns the absolute memory-chain bit offset of the named
// location's given bit.
func memBit(t *testing.T, victim, loc string, bit int) int {
	t.Helper()
	vi, err := loadVictim(victim)
	if err != nil {
		t.Fatal(err)
	}
	l, err := vi.memMap.Find(loc)
	if err != nil {
		t.Fatalf("victim %s: %v (locations: %+v)", victim, err, vi.memMap.Locations)
	}
	return l.Offset + bit
}

// TestProcReferenceRun: the fault-free reference run completes with
// exit 0 and captures the victim's output.
func TestProcReferenceRun(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, err := New(core.TargetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	camp := procCampaign(bin, RegisterChainName, 2_000_000)
	ex := runExperiment(t, tgt, camp, -1, nil, 0)
	if got := ex.Result.Outcome.Status; got != campaign.OutcomeCompleted {
		t.Fatalf("reference outcome = %s, want completed", got)
	}
	out := ex.Result.Memory["stdout"]
	if !strings.Contains(string(out), "matmul n=24") {
		t.Fatalf("reference stdout = %q, want matmul output", out)
	}
}

// TestProcMasked: a flip in gC before the workload runs is fully
// overwritten by the computation — deterministically masked.
func TestProcMasked(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, MemoryChainName, 2_000_000)
	fault := &faultmodel.Fault{Kind: faultmodel.Transient,
		Bits: []int{memBit(t, bin, "g.main.gC", 7)}}
	ex := runExperiment(t, tgt, camp, 0, fault, 3)
	if !ex.Injected {
		t.Fatal("fault was not injected")
	}
	if got := ex.Result.Outcome.Status; got != campaign.OutcomeMasked {
		t.Fatalf("outcome = %s (mech %q), want masked", got, ex.Result.Outcome.Mechanism)
	}
}

// TestProcSDC: a flip in input matrix gA changes the printed hash —
// deterministic silent data corruption.
func TestProcSDC(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, MemoryChainName, 2_000_000)
	fault := &faultmodel.Fault{Kind: faultmodel.Transient,
		Bits: []int{memBit(t, bin, "g.main.gA", 20)}}
	ex := runExperiment(t, tgt, camp, 1, fault, 3)
	if got := ex.Result.Outcome.Status; got != campaign.OutcomeSDC {
		t.Fatalf("outcome = %s (mech %q), want sdc", got, ex.Result.Outcome.Mechanism)
	}
	if ex.Result.Outcome.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", ex.Result.Outcome.Attempts)
	}
}

// TestProcCrash: flipping the stack pointer's high bit makes the next
// stack access fault — a crash via signal or non-zero exit either way.
func TestProcCrash(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, RegisterChainName, 2_000_000)
	m := RegisterMap()
	loc, err := m.Find("special.rsp")
	if err != nil {
		t.Fatal(err)
	}
	fault := &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{loc.Offset}}
	ex := runExperiment(t, tgt, camp, 2, fault, 5)
	out := ex.Result.Outcome
	if out.Status != campaign.OutcomeCrash {
		t.Fatalf("outcome = %s (mech %q), want crash", out.Status, out.Mechanism)
	}
	if out.Mechanism == "" {
		t.Fatal("crash outcome carries no mechanism")
	}
}

// TestProcHangWatchdogNoLeaks is the hang-path contract: a victim
// whose loop bound is flipped to an astronomically large value must be
// reaped by the watchdog, classified hang with Attempts recorded, and
// must leak neither the child process nor a tracer goroutine.
func TestProcHangWatchdogNoLeaks(t *testing.T) {
	bin := victimBin(t, "loop")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, MemoryChainName, 200_000) // 200ms watchdog

	before := runtime.NumGoroutine()
	// Bit 1 of the 64-bit bound is value bit 62: gEnd jumps from 4096
	// to 2^62+4096, an effectively infinite loop (bit 0 would flip the
	// sign and end the loop immediately).
	fault := &faultmodel.Fault{Kind: faultmodel.Transient,
		Bits: []int{memBit(t, bin, "g.main.gEnd", 1)}}
	start := time.Now()
	ex := runExperiment(t, tgt, camp, 3, fault, 3)
	elapsed := time.Since(start)

	out := ex.Result.Outcome
	if out.Status != campaign.OutcomeHang {
		t.Fatalf("outcome = %s (mech %q), want hang", out.Status, out.Mechanism)
	}
	if out.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", out.Attempts)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hang took %v to reap; the watchdog should fire at ~200ms", elapsed)
	}
	// The child must be gone: /proc/<pid> either absent or a zombie we
	// did not leave behind (the tracer reaps synchronously, so absent).
	pid := tgt.LastPID()
	if pid == 0 {
		t.Fatal("no child pid recorded")
	}
	if _, err := os.Stat(fmt.Sprintf("/proc/%d", pid)); err == nil {
		t.Fatalf("child pid %d still present after hang reap", pid)
	}
	// No stuck tracer goroutine: allow brief settling, then require the
	// count back near the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d; tracer leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same target must run a healthy follow-up experiment: cleanup
	// after a hang leaves no wedged state behind.
	ex2 := runExperiment(t, tgt, camp, -1, nil, 0)
	if got := ex2.Result.Outcome.Status; got != campaign.OutcomeCompleted {
		t.Fatalf("follow-up reference outcome = %s, want completed", got)
	}
}

// TestProcScanChainAlgorithmPreciseError: proctarget deliberately skips
// the scan-chain methods; selecting scifi against it must surface the
// Fig 3 template's NotImplementedError naming ReadScanChain, and the
// aborted experiment must not leak its child.
func TestProcScanChainAlgorithmPreciseError(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, RegisterChainName, 2_000_000)
	ex := &core.Experiment{
		Campaign: camp,
		Seq:      0,
		Name:     "proc-scifi-0",
		Fault:    &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{0}},
		Trigger:  trigger.Spec{Kind: "cycle", Cycle: 1},
		RNG:      rand.New(rand.NewSource(1)),
	}
	err := core.SCIFI.Run(tgt, ex)
	var ni *core.NotImplementedError
	if !errors.As(err, &ni) {
		t.Fatalf("err = %v, want NotImplementedError", err)
	}
	if ni.Method != "ReadScanChain" {
		t.Fatalf("NotImplementedError.Method = %q, want ReadScanChain", ni.Method)
	}
	if ni.Target != "proc" {
		t.Fatalf("NotImplementedError.Target = %q, want proc", ni.Target)
	}
	if core.ClassifyError(err) != core.Persistent {
		t.Fatalf("scan-chain gap classified %v, want persistent", core.ClassifyError(err))
	}
	// The algorithm aborted mid-experiment with a live stopped child;
	// InitTestCard is the recovery point and must reap it.
	pid := tgt.LastPID()
	if err := tgt.InitTestCard(&core.Experiment{Campaign: camp}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fmt.Sprintf("/proc/%d", pid)); err == nil {
		t.Fatalf("aborted experiment leaked child pid %d", pid)
	}
}

// TestProcRejectsPersistentFaults: a live process has no reassertion
// hook, so stuck-at and intermittent models are refused up front with a
// persistent (non-retryable) classification.
func TestProcRejectsPersistentFaults(t *testing.T) {
	bin := victimBin(t, "matmul")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, RegisterChainName, 2_000_000)
	ex := &core.Experiment{
		Campaign: camp,
		Seq:      0,
		Name:     "proc-stuck-0",
		Fault:    &faultmodel.Fault{Kind: faultmodel.StuckAt1, Bits: []int{0}},
		Trigger:  trigger.Spec{Kind: "cycle", Cycle: 1},
		RNG:      rand.New(rand.NewSource(1)),
	}
	err := core.RuntimeSWIFI.Run(tgt, ex)
	if err == nil || !strings.Contains(err.Error(), "transient only") {
		t.Fatalf("err = %v, want transient-only rejection", err)
	}
	if core.ClassifyError(err) != core.Persistent {
		t.Fatalf("classified %v, want persistent", core.ClassifyError(err))
	}
}

// TestProcEarlyExitIsNotInjected: a budget far past the victim's
// lifetime means the injection point never occurs; the experiment
// completes uninjected (the runtime-SWIFI contract).
func TestProcEarlyExitIsNotInjected(t *testing.T) {
	bin := victimBin(t, "loop")
	tgt, _ := New(core.TargetConfig{})
	camp := procCampaign(bin, MemoryChainName, 5_000_000)
	fault := &faultmodel.Fault{Kind: faultmodel.Transient,
		Bits: []int{memBit(t, bin, "g.main.gEnd", 1)}}
	ex := runExperiment(t, tgt, camp, 5, fault, 50_000_000)
	if ex.Injected {
		t.Fatal("fault injected although the workload ended before the trigger")
	}
	if got := ex.Result.Outcome.Status; got != campaign.OutcomeMasked {
		t.Fatalf("outcome = %s, want masked (uninjected, output identical)", got)
	}
}

// TestProcCampaignPlanDeterminism runs a seeded campaign through the
// standard runner (registry target, random injection window) twice:
// the fault plan hash must be byte-identical across reruns — the
// relaxed replay contract for nondeterministic targets — while the
// summary declares the target nondeterministic and every outcome lands
// in the process outcome taxonomy.
func TestProcCampaignPlanDeterminism(t *testing.T) {
	bin := victimBin(t, "matmul")
	info, ok := core.LookupTarget("proc")
	if !ok {
		t.Fatal("proc target not registered")
	}
	cfg := core.TargetConfig{Params: map[string]string{"victim": bin}}
	tsd, err := info.SystemData("proc-board", cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp := &campaign.Campaign{
		Name:           "proc-e2e",
		TargetName:     "proc-board",
		ChainName:      RegisterChainName,
		Locations:      []string{"gpr"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{1, 200},
		NumExperiments: 10,
		Seed:           99,
		Termination:    campaign.Termination{TimeoutCycles: 1_000_000}, // 1s watchdog
		Workload:       campaign.WorkloadSpec{Name: "victim:matmul", Source: bin},
		LogMode:        campaign.LogNormal,
	}
	alg, ok := core.Algorithms()[info.Algorithm]
	if !ok {
		t.Fatalf("algorithm %q not registered", info.Algorithm)
	}
	run := func() *core.Summary {
		t.Helper()
		ts, err := info.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.NewRunner(ts, alg, camp, tsd)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	s1 := run()
	s2 := run()
	if s1.PlanHash == "" || s1.PlanHash != s2.PlanHash {
		t.Fatalf("plan hashes differ across same-seed reruns: %q vs %q", s1.PlanHash, s2.PlanHash)
	}
	if s1.Deterministic || s2.Deterministic {
		t.Fatal("proc target reported deterministic; outcome replay is statistical")
	}
	if s1.Experiments != camp.NumExperiments {
		t.Fatalf("experiments = %d, want %d", s1.Experiments, camp.NumExperiments)
	}
	valid := map[campaign.OutcomeStatus]bool{
		campaign.OutcomeMasked: true, campaign.OutcomeSDC: true,
		campaign.OutcomeCrash: true, campaign.OutcomeHang: true,
		campaign.OutcomeCompleted: true,
	}
	total := 0
	for st, n := range s1.ByStatus {
		if !valid[st] {
			t.Fatalf("unexpected status %q (%d) in proc campaign", st, n)
		}
		total += n
	}
	if total != camp.NumExperiments {
		t.Fatalf("ByStatus covers %d experiments, want %d", total, camp.NumExperiments)
	}
}

// TestProcSystemDataChains: the configuration-phase record exposes the
// register chain always and the victim's globals when given a binary.
func TestProcSystemDataChains(t *testing.T) {
	bin := victimBin(t, "matmul")
	tsd, err := SystemData("proc", core.TargetConfig{Params: map[string]string{"victim": bin}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tsd.Validate(); err != nil {
		t.Fatal(err)
	}
	regs, err := tsd.Chain(RegisterChainName)
	if err != nil {
		t.Fatal(err)
	}
	if regs.Length != 18*64 {
		t.Fatalf("register chain length = %d, want %d", regs.Length, 18*64)
	}
	mem, err := tsd.Chain(MemoryChainName)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"g.main.gA", "g.main.gB", "g.main.gC"} {
		if _, err := mem.Find(want); err != nil {
			t.Fatalf("memory chain: %v", err)
		}
	}
}
