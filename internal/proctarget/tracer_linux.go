//go:build linux && amd64

package proctarget

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"syscall"

	"goofi/internal/core"
)

// The tracer drives one traced child through the ZOFI state machine:
//
//	fork (stopped) → cont to int3 at main.workload → restore byte,
//	rewind rip → SINGLESTEP × budget → flip bits → CONT → reap.
//
// Linux delivers ptrace stop events only to the tracing thread, so the
// Target locks its goroutine to one OS thread (lockThread) for the
// whole session; every method here except Kill/killProcess must run on
// that thread. The child runs with GOMAXPROCS=1 and async preemption
// off so its main goroutine stays on the traced thread and SIGURG
// noise does not perturb the step budget.

// ptraceOptExitKill is PTRACE_O_EXITKILL (missing from the stdlib
// syscall package): the kernel SIGKILLs the tracee when the tracer
// thread exits, so an abandoned experiment can never leak its child.
const ptraceOptExitKill = 0x00100000

func lockThread()   { runtime.LockOSThread() }
func unlockThread() { runtime.UnlockOSThread() }

// killProcess is the watchdog's lever: thread-agnostic, unlike every
// ptrace request.
func killProcess(pid int) { syscall.Kill(pid, syscall.SIGKILL) }

type tracer struct {
	cmd *exec.Cmd
	pid int

	bpAddr   uint64
	origWord []byte // byte under the planted 0xCC
	bpSet    bool

	stdoutR   *os.File
	outDone   chan struct{}
	outBuf    []byte
	reaped    bool
	lastState *exitInfo
}

// startTraced forks the victim stopped at its first instruction.
func startTraced(victim string) (*tracer, error) {
	r, w, err := os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("proctarget: stdout pipe: %w", err)
	}
	cmd := exec.Command(victim)
	// An *os.File stdout is passed straight to the child — no copy
	// goroutine inside exec that would outlive a killed experiment.
	cmd.Stdout = w
	cmd.Stderr = w
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1", "GODEBUG=asyncpreemptoff=1")
	cmd.SysProcAttr = &syscall.SysProcAttr{Ptrace: true}
	if err := cmd.Start(); err != nil {
		r.Close()
		w.Close()
		return nil, &procError{class: core.Persistent, err: fmt.Errorf("proctarget: start victim: %w", err)}
	}
	w.Close() // parent's copy; the child holds the write end now
	t := &tracer{cmd: cmd, pid: cmd.Process.Pid, stdoutR: r, outDone: make(chan struct{})}
	go func() {
		defer close(t.outDone)
		buf, _ := io.ReadAll(io.LimitReader(r, maxStdout+1))
		t.outBuf = buf
	}()

	// The child raised PTRACE_TRACEME and stopped on its exec SIGTRAP.
	var ws syscall.WaitStatus
	if _, err := syscall.Wait4(t.pid, &ws, 0, nil); err != nil {
		t.Shutdown()
		return nil, fmt.Errorf("proctarget: wait for exec stop: %w", err)
	}
	if !ws.Stopped() {
		t.Shutdown()
		return nil, fmt.Errorf("proctarget: victim not stopped after exec (status %#x)", uint32(ws))
	}
	if err := syscall.PtraceSetOptions(t.pid, ptraceOptExitKill); err != nil {
		t.Shutdown()
		return nil, fmt.Errorf("proctarget: PTRACE_SETOPTIONS: %w", err)
	}
	return t, nil
}

func (t *tracer) PID() int { return t.pid }

// SetBreakpoint plants an int3 at addr.
func (t *tracer) SetBreakpoint(addr uint64) error {
	orig := make([]byte, 1)
	if _, err := syscall.PtracePeekData(t.pid, uintptr(addr), orig); err != nil {
		return fmt.Errorf("proctarget: peek at breakpoint %#x: %w", addr, err)
	}
	if _, err := syscall.PtracePokeData(t.pid, uintptr(addr), []byte{0xCC}); err != nil {
		return fmt.Errorf("proctarget: plant breakpoint %#x: %w", addr, err)
	}
	t.bpAddr = addr
	t.origWord = orig
	t.bpSet = true
	return nil
}

// waitStop resumes with the given request and waits for the next stop,
// returning (nil, exitInfo) when the child terminated instead.
func (t *tracer) waitStop(resume func(pid, sig int) error, sig int) (*syscall.WaitStatus, *exitInfo, error) {
	if err := resume(t.pid, sig); err != nil {
		return nil, nil, fmt.Errorf("proctarget: resume: %w", err)
	}
	var ws syscall.WaitStatus
	for {
		if _, err := syscall.Wait4(t.pid, &ws, 0, nil); err != nil {
			if err == syscall.EINTR {
				continue
			}
			return nil, nil, fmt.Errorf("proctarget: wait: %w", err)
		}
		break
	}
	if ws.Exited() {
		t.reaped = true
		t.lastState = &exitInfo{exited: true, code: ws.ExitStatus()}
		return nil, t.lastState, nil
	}
	if ws.Signaled() {
		t.reaped = true
		t.lastState = &exitInfo{signaled: true, signal: sigName(ws.Signal())}
		return nil, t.lastState, nil
	}
	return &ws, nil, nil
}

// ContToBreakpoint continues to the planted int3, restores the original
// byte and rewinds rip. hit is false when the child terminated without
// reaching the breakpoint.
func (t *tracer) ContToBreakpoint() (hit bool, ei *exitInfo, err error) {
	if !t.bpSet {
		return false, nil, fmt.Errorf("proctarget: ContToBreakpoint without a breakpoint")
	}
	sig := 0
	for {
		ws, ei, err := t.waitStop(syscall.PtraceCont, sig)
		if err != nil || ei != nil {
			return false, ei, err
		}
		if ws.StopSignal() == syscall.SIGTRAP {
			var regs syscall.PtraceRegs
			if err := syscall.PtraceGetRegs(t.pid, &regs); err != nil {
				return false, nil, fmt.Errorf("proctarget: getregs at breakpoint: %w", err)
			}
			if regs.Rip != t.bpAddr+1 {
				// A trap that is not ours (runtime internals); swallow
				// it and keep going.
				sig = 0
				continue
			}
			if _, err := syscall.PtracePokeData(t.pid, uintptr(t.bpAddr), t.origWord); err != nil {
				return false, nil, fmt.Errorf("proctarget: restore breakpoint byte: %w", err)
			}
			regs.Rip = t.bpAddr
			if err := syscall.PtraceSetRegs(t.pid, &regs); err != nil {
				return false, nil, fmt.Errorf("proctarget: rewind rip: %w", err)
			}
			t.bpSet = false
			return true, nil, nil
		}
		// Forward every other signal to the child unchanged.
		sig = int(ws.StopSignal())
	}
}

// singleStepSig is PTRACE_SINGLESTEP with a signal to deliver; the
// stdlib wrapper takes no signal argument, so forwarded signals go
// through the raw syscall (ptrace data argument = signal number).
func singleStepSig(pid, sig int) error {
	const ptraceSingleStep = 9
	_, _, errno := syscall.Syscall6(syscall.SYS_PTRACE,
		ptraceSingleStep, uintptr(pid), 0, uintptr(sig), 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

// Step single-steps up to budget instructions. It returns early (with
// the exit info) if the child terminates first.
func (t *tracer) Step(budget uint64) (steps uint64, ei *exitInfo, err error) {
	sig := 0
	for steps < budget {
		ws, ei, err := t.waitStop(singleStepSig, sig)
		if err != nil || ei != nil {
			return steps, ei, err
		}
		steps++
		if ws.StopSignal() == syscall.SIGTRAP {
			sig = 0
		} else {
			sig = int(ws.StopSignal())
		}
	}
	return steps, nil, nil
}

// regSlot returns a pointer to the register at the fixed chain index
// (gprNames then specialNames order).
func regSlot(regs *syscall.PtraceRegs, slot int) (*uint64, error) {
	switch slot {
	case 0:
		return &regs.Rax, nil
	case 1:
		return &regs.Rbx, nil
	case 2:
		return &regs.Rcx, nil
	case 3:
		return &regs.Rdx, nil
	case 4:
		return &regs.Rsi, nil
	case 5:
		return &regs.Rdi, nil
	case 6:
		return &regs.Rbp, nil
	case 7:
		return &regs.R8, nil
	case 8:
		return &regs.R9, nil
	case 9:
		return &regs.R10, nil
	case 10:
		return &regs.R11, nil
	case 11:
		return &regs.R12, nil
	case 12:
		return &regs.R13, nil
	case 13:
		return &regs.R14, nil
	case 14:
		return &regs.R15, nil
	case 15:
		return &regs.Rip, nil
	case 16:
		return &regs.Rsp, nil
	case 17:
		return &regs.Eflags, nil
	}
	return nil, fmt.Errorf("proctarget: register slot %d outside chain", slot)
}

// FlipRegisterBits xors the given (slot, value-bit) pairs into the
// stopped child's registers in one GETREGS/SETREGS round trip.
func (t *tracer) FlipRegisterBits(slots [][2]int) error {
	var regs syscall.PtraceRegs
	if err := syscall.PtraceGetRegs(t.pid, &regs); err != nil {
		return fmt.Errorf("proctarget: getregs for injection: %w", err)
	}
	for _, sv := range slots {
		reg, err := regSlot(&regs, sv[0])
		if err != nil {
			return err
		}
		*reg ^= uint64(1) << uint(sv[1])
	}
	if err := syscall.PtraceSetRegs(t.pid, &regs); err != nil {
		return fmt.Errorf("proctarget: setregs for injection: %w", err)
	}
	return nil
}

// FlipMemoryBit xors one bit into the child's memory.
func (t *tracer) FlipMemoryBit(addr uint64, mask byte) error {
	b := make([]byte, 1)
	if _, err := syscall.PtracePeekData(t.pid, uintptr(addr), b); err != nil {
		return fmt.Errorf("proctarget: peek %#x: %w", addr, err)
	}
	b[0] ^= mask
	if _, err := syscall.PtracePokeData(t.pid, uintptr(addr), b); err != nil {
		return fmt.Errorf("proctarget: poke %#x: %w", addr, err)
	}
	return nil
}

// Resume continues the child to termination, forwarding signals, and
// returns how it ended.
func (t *tracer) Resume() (*exitInfo, error) {
	if t.reaped {
		return t.lastState, nil
	}
	sig := 0
	for {
		ws, ei, err := t.waitStop(syscall.PtraceCont, sig)
		if err != nil {
			return nil, err
		}
		if ei != nil {
			return ei, nil
		}
		if ws.StopSignal() == syscall.SIGTRAP {
			sig = 0
		} else {
			// Deliver the signal. A fatal one (SIGSEGV from a flipped
			// pointer) either kills the child outright or is converted
			// by the Go runtime into a panic exit — crash either way.
			sig = int(ws.StopSignal())
		}
	}
}

// Stdout returns the captured output; it blocks until the reader
// goroutine drained the pipe, which requires the child to be dead or
// to have closed stdout. Call only after Resume/Shutdown reaped it.
func (t *tracer) Stdout() []byte {
	<-t.outDone
	if len(t.outBuf) > maxStdout {
		return t.outBuf[:maxStdout]
	}
	return t.outBuf
}

// Shutdown force-kills and reaps the child (idempotent) and joins the
// stdout reader, guaranteeing no goroutine or zombie outlives the
// experiment.
func (t *tracer) Shutdown() {
	if !t.reaped {
		syscall.Kill(t.pid, syscall.SIGKILL)
		var ws syscall.WaitStatus
		for {
			_, err := syscall.Wait4(t.pid, &ws, 0, nil)
			if err == syscall.EINTR {
				continue
			}
			break
		}
		t.reaped = true
	}
	t.stdoutR.Close()
	<-t.outDone
}

// sigName names a signal for outcome mechanisms.
func sigName(sig syscall.Signal) string {
	switch sig {
	case syscall.SIGSEGV:
		return "SIGSEGV"
	case syscall.SIGBUS:
		return "SIGBUS"
	case syscall.SIGILL:
		return "SIGILL"
	case syscall.SIGFPE:
		return "SIGFPE"
	case syscall.SIGABRT:
		return "SIGABRT"
	case syscall.SIGKILL:
		return "SIGKILL"
	case syscall.SIGTRAP:
		return "SIGTRAP"
	}
	return fmt.Sprintf("sig%d", int(sig))
}
