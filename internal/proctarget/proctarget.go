// Package proctarget implements fault injection into live OS processes,
// in the style of ZOFI: the victim program is forked as a real child
// process, stopped at a seeded injection point with Linux ptrace
// (breakpoint at the workload symbol, then a single-step budget drawn
// from the campaign's random window), a register or memory bit is
// flipped, execution resumes, and the termination is classified into
// the ZOFI outcome taxonomy — masked, sdc, crash, hang.
//
// proctarget is the first GOOFI target whose outcomes are not
// byte-reproducible: a live process is subject to OS scheduling and
// timing, so only the fault *plan* (seq → fault + trigger) is
// deterministic and replayable. The target declares this by
// implementing core.NondeterministicTarget with Deterministic() ==
// false, which relaxes the campaign's byte-identity guarantee to
// plan-identity plus outcome-class statistics.
//
// The injection fault space is exposed as two pseudo scan chains,
// following the swifi precedent:
//
//   - "registers": the 15 amd64 general-purpose registers (gpr.rax …
//     gpr.r15) plus special.rip, special.rsp and special.eflags, 64
//     bits each. Bit 0 of a location is the register's most
//     significant bit.
//   - "memory": the victim's writable package-level objects (ELF
//     symbols main.*), one location g.<symbol> per object. Within
//     each 64-bit word, bit 0 is the most significant value bit.
package proctarget

import (
	"bytes"
	"debug/elf"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
)

// Kind is the registry name of the live-process target.
const Kind = "proc"

// Chain names of the proc fault space.
const (
	RegisterChainName = "registers"
	MemoryChainName   = "memory"
)

// WorkloadSymbol is the function where the injection breakpoint is
// planted. Victim programs mark their kernel with a //go:noinline
// function of this name.
const WorkloadSymbol = "main.workload"

// maxStdout caps the captured victim output; a fault that turns the
// victim into an output firehose must not exhaust host memory.
const maxStdout = 1 << 20

// gprNames is the fixed register-chain layout: 15 general-purpose
// registers followed by the special registers. The order is load-
// bearing — chain offsets index into it — and must match regSlot in
// the linux tracer.
var gprNames = []string{
	"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var specialNames = []string{"rip", "rsp", "eflags"}

// RegisterMap builds the "registers" pseudo scan chain: one 64-bit
// location per register.
func RegisterMap() scanchain.Map {
	m := scanchain.Map{Chain: RegisterChainName}
	add := func(prefix string, names []string) {
		for _, n := range names {
			m.Locations = append(m.Locations, scanchain.Location{
				Name:   prefix + "." + n,
				Offset: m.Length,
				Width:  64,
			})
			m.Length += 64
		}
	}
	add("gpr", gprNames)
	add("special", specialNames)
	return m
}

// regSlotOf maps an absolute register-chain bit offset to (register
// index in gprNames+specialNames order, value bit). Bit 0 of a
// location is the MSB of the 64-bit register, so value bit =
// 63 - bit-within-location.
func regSlotOf(off int) (slot int, valueBit int) {
	return off / 64, 63 - off%64
}

// victimInfo is the parsed ELF metadata of one victim binary: the
// breakpoint address and the writable main.* object symbols forming
// the memory chain.
type victimInfo struct {
	path      string
	workload  uint64
	memMap    scanchain.Map
	symAddrs  map[string]uint64 // location name -> virtual address
	refStdout []byte            // fault-free stdout, filled lazily
	refOnce   sync.Once
	refErr    error
}

var victimCache = struct {
	sync.Mutex
	m map[string]*victimInfo
}{m: make(map[string]*victimInfo)}

// loadVictim parses (and caches) the victim ELF. Go linux/amd64
// binaries are non-PIE by default, so symbol virtual addresses equal
// runtime addresses; PIE binaries are rejected because the load bias
// is unknown to the tracer.
func loadVictim(path string) (*victimInfo, error) {
	victimCache.Lock()
	if vi, ok := victimCache.m[path]; ok {
		victimCache.Unlock()
		return vi, nil
	}
	victimCache.Unlock()

	f, err := elf.Open(path)
	if err != nil {
		return nil, &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: open victim %q: %w", path, err)}
	}
	defer f.Close()
	if f.Type == elf.ET_DYN {
		return nil, &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: victim %q is position-independent; build it without PIE so symbol addresses are load addresses", path)}
	}
	syms, err := f.Symbols()
	if err != nil {
		return nil, &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: victim %q symbols: %w", path, err)}
	}

	vi := &victimInfo{path: path, symAddrs: make(map[string]uint64)}
	type memSym struct {
		name string
		addr uint64
		size uint64
	}
	var mems []memSym
	for _, s := range syms {
		if s.Name == WorkloadSymbol && elf.ST_TYPE(s.Info) == elf.STT_FUNC {
			vi.workload = s.Value
			continue
		}
		if elf.ST_TYPE(s.Info) != elf.STT_OBJECT || !strings.HasPrefix(s.Name, "main.") {
			continue
		}
		// Only writable, allocated data, and only whole 64-bit words:
		// the chain bit layout is word-based.
		if s.Size < 8 || s.Size%8 != 0 || int(s.Section) >= len(f.Sections) {
			continue
		}
		sect := f.Sections[s.Section]
		if sect.Flags&elf.SHF_WRITE == 0 || sect.Flags&elf.SHF_ALLOC == 0 {
			continue
		}
		mems = append(mems, memSym{name: s.Name, addr: s.Value, size: s.Size})
	}
	if vi.workload == 0 {
		return nil, &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: victim %q has no %s function (mark the kernel //go:noinline)", path, WorkloadSymbol)}
	}
	sort.Slice(mems, func(i, j int) bool {
		if mems[i].addr != mems[j].addr {
			return mems[i].addr < mems[j].addr
		}
		return mems[i].name < mems[j].name
	})
	vi.memMap = scanchain.Map{Chain: MemoryChainName}
	for _, ms := range mems {
		name := "g." + ms.name
		vi.memMap.Locations = append(vi.memMap.Locations, scanchain.Location{
			Name:   name,
			Offset: vi.memMap.Length,
			Width:  int(ms.size) * 8,
		})
		vi.symAddrs[name] = ms.addr
		vi.memMap.Length += int(ms.size) * 8
	}

	victimCache.Lock()
	if prev, ok := victimCache.m[path]; ok {
		vi = prev
	} else {
		victimCache.m[path] = vi
	}
	victimCache.Unlock()
	return vi, nil
}

// referenceStdout returns the victim's fault-free output, captured
// once per binary by running it plain (untraced). masked-vs-sdc
// classification compares against this capture.
func (vi *victimInfo) referenceStdout(timeout time.Duration) ([]byte, error) {
	vi.refOnce.Do(func() {
		if timeout < time.Second {
			timeout = time.Second
		}
		cmd := exec.Command(vi.path)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			vi.refErr = fmt.Errorf("proctarget: reference run: %w", err)
			return
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				vi.refErr = fmt.Errorf("proctarget: reference run of %q failed: %w", vi.path, err)
				return
			}
		case <-time.After(timeout):
			cmd.Process.Kill()
			<-done
			vi.refErr = fmt.Errorf("proctarget: reference run of %q exceeded %v", vi.path, timeout)
			return
		}
		b := out.Bytes()
		if len(b) > maxStdout {
			b = b[:maxStdout]
		}
		vi.refStdout = b
	})
	if vi.refErr != nil {
		return nil, &procError{class: core.Persistent, err: vi.refErr}
	}
	return vi.refStdout, nil
}

// procError carries an explicit recovery class through the runner's
// ClassifyError (harness errors of the ptrace machinery are transient
// by default; configuration errors are persistent).
type procError struct {
	class core.ErrorClass
	err   error
}

func (e *procError) Error() string               { return e.err.Error() }
func (e *procError) Unwrap() error               { return e.err }
func (e *procError) ErrorClass() core.ErrorClass { return e.class }

// SystemData builds the configuration-phase record for the proc
// target. The register chain is always present; the memory chain needs
// the victim binary (cfg param "victim") to read its symbol table.
func SystemData(name string, cfg core.TargetConfig) (*campaign.TargetSystemData, error) {
	tsd := &campaign.TargetSystemData{
		Name:         name,
		TestCardName: "ptrace",
		Chains:       []scanchain.Map{RegisterMap()},
		Description:  "live OS process driven via ptrace (ZOFI-style run-time injection)",
	}
	if victim := cfg.Param("victim", ""); victim != "" {
		vi, err := loadVictim(victim)
		if err != nil {
			return nil, err
		}
		if len(vi.memMap.Locations) > 0 {
			tsd.Chains = append(tsd.Chains, vi.memMap)
		}
	}
	return tsd, nil
}

// Target is the live-process TargetSystem. It embeds the Framework
// template and deliberately leaves ReadScanChain/WriteScanChain as the
// template stubs: a live process has no scan chain, and selecting a
// scan-chain algorithm (scifi) against it must yield the precise
// NotImplementedError naming the missing method (paper Fig 3).
type Target struct {
	core.Framework

	// Per-experiment state, reset by InitTestCard.
	vi               *victimInfo
	tr               *tracer
	watchdog         *time.Timer
	mu               sync.Mutex
	timedOut         bool
	locked           bool
	atInjectionPoint bool
	steps            uint64
	exit             *exitInfo // termination observed before WaitForTermination
	lastPID          int
}

// New builds a proc target. The victim binary is taken per experiment
// from the campaign's Workload.Source, so one target serves any victim.
func New(core.TargetConfig) (*Target, error) {
	return &Target{Framework: core.Framework{TargetName: "proc"}}, nil
}

// Deterministic declares the relaxation: proc outcomes are statistical,
// only the fault plan is reproducible.
func (t *Target) Deterministic() bool { return false }

// LastPID reports the pid of the most recently traced child, for leak
// tests ( /proc/<pid> liveness ).
func (t *Target) LastPID() int { return t.lastPID }

// exitInfo is how the traced child terminated.
type exitInfo struct {
	exited   bool
	code     int
	signaled bool
	signal   string
}

func (e *exitInfo) mechanism() string {
	if e.signaled {
		return "signal:" + e.signal
	}
	return fmt.Sprintf("exit:%d", e.code)
}

// timeoutOf converts the campaign's TimeoutCycles to the proc wall
// clock: a live process has no emulated cycle counter, so TimeoutCycles
// is interpreted as microseconds (the CLI default of 300000 is 300ms).
func timeoutOf(ex *core.Experiment) time.Duration {
	tc := ex.Campaign.Termination.TimeoutCycles
	if tc == 0 {
		return 300 * time.Millisecond
	}
	return time.Duration(tc) * time.Microsecond
}

// InitTestCard resets per-experiment state, reaping any child a failed
// previous experiment left behind.
func (t *Target) InitTestCard(ex *core.Experiment) error {
	t.cleanup()
	t.vi = nil
	t.atInjectionPoint = false
	t.steps = 0
	t.exit = nil
	t.mu.Lock()
	t.timedOut = false
	t.mu.Unlock()
	return nil
}

// cleanup tears one traced session down: watchdog disarmed, child
// killed and reaped, stdout reader joined, OS thread unlocked. It is
// idempotent and runs both at normal termination and from InitTestCard
// when a previous experiment errored out mid-algorithm.
func (t *Target) cleanup() {
	if t.watchdog != nil {
		t.watchdog.Stop()
		t.watchdog = nil
	}
	if t.tr != nil {
		t.tr.Shutdown()
		t.tr = nil
	}
	if t.locked {
		t.locked = false
		unlockThread()
	}
}

// LoadWorkload resolves the victim binary from the campaign's workload
// source and validates the experiment against the proc fault model: a
// live process supports transient faults only — persistent models need
// a reassertion hook the OS does not provide.
func (t *Target) LoadWorkload(ex *core.Experiment) error {
	victim := ex.Campaign.Workload.Source
	if victim == "" {
		return &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: campaign %q has no victim binary (workload source)", ex.Campaign.Name)}
	}
	if _, err := os.Stat(victim); err != nil {
		return &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: victim binary: %w", err)}
	}
	if ex.Fault != nil && ex.Fault.Kind != faultmodel.Transient {
		return &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: fault kind %q not injectable into a live process (transient only)", ex.Fault.Kind)}
	}
	vi, err := loadVictim(victim)
	if err != nil {
		return err
	}
	t.vi = vi
	return nil
}

// WriteMemory is a no-op: exec loads the victim's image, there is
// nothing to download.
func (t *Target) WriteMemory(ex *core.Experiment) error { return nil }

// RunWorkload forks the victim under ptrace, stopped before its first
// instruction, plants the workload breakpoint (injection runs only)
// and arms the hang watchdog. From here to cleanup every ptrace
// request must come from this OS thread.
func (t *Target) RunWorkload(ex *core.Experiment) error {
	if t.vi == nil {
		return fmt.Errorf("proctarget: RunWorkload before LoadWorkload")
	}
	lockThread()
	t.locked = true
	tr, err := startTraced(t.vi.path)
	if err != nil {
		return err
	}
	t.tr = tr
	t.lastPID = tr.PID()
	mExperiments.Inc()
	if !ex.IsReference() {
		if err := tr.SetBreakpoint(t.vi.workload); err != nil {
			return err
		}
	}
	// One deadline covers the whole experiment: breakpoint wait,
	// stepping, and the post-injection run. The timer goroutine only
	// sends SIGKILL — thread-agnostic — and the tracer's wait unblocks
	// with the death.
	pid := tr.PID()
	t.watchdog = time.AfterFunc(timeoutOf(ex), func() {
		t.mu.Lock()
		t.timedOut = true
		t.mu.Unlock()
		killProcess(pid)
	})
	return nil
}

// hangFired reports whether the watchdog killed the child.
func (t *Target) hangFired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.timedOut
}

// WaitForBreakpoint continues to the workload breakpoint and then
// single-steps the seeded instruction budget (ex.Trigger.Cycle, drawn
// from the campaign's random window). If the victim terminates before
// the injection point is reached, the fault's time point never
// occurred: the experiment proceeds to termination uninjected.
func (t *Target) WaitForBreakpoint(ex *core.Experiment) error {
	if t.tr == nil {
		return fmt.Errorf("proctarget: WaitForBreakpoint before RunWorkload")
	}
	hit, ei, err := t.tr.ContToBreakpoint()
	if err != nil {
		return t.tracerErr(err)
	}
	if !hit {
		t.exit = ei
		return nil
	}
	budget := ex.Trigger.Cycle
	steps, ei, err := t.tr.Step(budget)
	t.steps = steps
	mSteps.Add(steps)
	if err != nil {
		return t.tracerErr(err)
	}
	if ei != nil {
		t.exit = ei
		return nil
	}
	t.atInjectionPoint = true
	ex.InjectionCycle = budget
	return nil
}

// tracerErr classifies a ptrace failure: if the watchdog killed the
// child while the tracer was mid-conversation, the "error" is really a
// hang and is deferred to WaitForTermination; otherwise it is a
// transient harness fault.
func (t *Target) tracerErr(err error) error {
	if t.hangFired() {
		t.exit = &exitInfo{signaled: true, signal: "SIGKILL"}
		return nil
	}
	return &procError{class: core.Transient, err: err}
}

// InjectFault flips the planned bits in the stopped victim. The fault's
// bit offsets index the campaign's selected chain: register bits go
// through GETREGS/SETREGS, memory bits through PEEK/POKEDATA at the
// symbol's address. Bit numbering is MSB-first within each 64-bit word
// on both chains.
func (t *Target) InjectFault(ex *core.Experiment) error {
	if ex.Fault == nil {
		return nil
	}
	if !t.atInjectionPoint {
		// Workload ended before the trigger fired (same contract as
		// runtime SWIFI): nothing to inject.
		return nil
	}
	switch ex.Campaign.ChainName {
	case RegisterChainName:
		m := RegisterMap()
		if err := ex.Fault.Validate(m.Length); err != nil {
			return err
		}
		slots := make([][2]int, 0, len(ex.Fault.Bits))
		for _, b := range ex.Fault.Bits {
			slot, valueBit := regSlotOf(b)
			slots = append(slots, [2]int{slot, valueBit})
		}
		if err := t.tr.FlipRegisterBits(slots); err != nil {
			return t.tracerErr(err)
		}
	case MemoryChainName:
		if t.vi == nil || len(t.vi.memMap.Locations) == 0 {
			return &procError{class: core.Persistent,
				err: fmt.Errorf("proctarget: victim %q exposes no memory chain", ex.Campaign.Workload.Source)}
		}
		if err := ex.Fault.Validate(t.vi.memMap.Length); err != nil {
			return err
		}
		for _, b := range ex.Fault.Bits {
			loc, ok := t.vi.memMap.LocationAt(b)
			if !ok {
				return fmt.Errorf("proctarget: fault bit %d outside memory chain", b)
			}
			// Word-based MSB-first layout: within each aligned 64-bit
			// word of the object, chain bit 0 is value bit 63. On
			// little-endian amd64, value bits 8i..8i+7 live in byte i.
			rel := b - loc.Offset
			word := rel / 64
			valueBit := 63 - rel%64
			addr := t.vi.symAddrs[loc.Name] + uint64(word*8) + uint64(valueBit/8)
			mask := byte(1) << (valueBit % 8)
			if err := t.tr.FlipMemoryBit(addr, mask); err != nil {
				return t.tracerErr(err)
			}
		}
	default:
		return &procError{class: core.Persistent,
			err: fmt.Errorf("proctarget: unknown chain %q (have %q, %q)", ex.Campaign.ChainName, RegisterChainName, MemoryChainName)}
	}
	if t.exit == nil {
		ex.Injected = true
	}
	return nil
}

// WaitForTermination resumes the victim and classifies how it ends
// (ZOFI taxonomy): watchdog kill → hang; signal or non-zero exit →
// crash; exit 0 with reference-identical output → masked; exit 0 with
// different output → sdc. The reference run itself must exit 0 and is
// recorded as completed.
func (t *Target) WaitForTermination(ex *core.Experiment) error {
	if t.tr == nil {
		return fmt.Errorf("proctarget: WaitForTermination before RunWorkload")
	}
	ei := t.exit
	if ei == nil {
		resumed, err := t.tr.Resume()
		if err != nil {
			if t.hangFired() {
				ei = &exitInfo{signaled: true, signal: "SIGKILL"}
			} else {
				return &procError{class: core.Transient, err: err}
			}
		} else {
			ei = resumed
		}
	}
	stdout := t.tr.Stdout()
	if len(stdout) > maxStdout {
		stdout = stdout[:maxStdout]
	}
	ex.PutScratch("proc.stdout", stdout)

	out := campaign.Outcome{Cycles: t.steps, Attempts: 1}
	switch {
	case t.hangFired():
		out.Status = campaign.OutcomeHang
		out.Mechanism = "watchdog"
	case ei.signaled || ei.code != 0:
		if ex.IsReference() {
			return &procError{class: core.Persistent,
				err: fmt.Errorf("proctarget: fault-free reference run failed (%s)", ei.mechanism())}
		}
		out.Status = campaign.OutcomeCrash
		out.Mechanism = ei.mechanism()
	case ex.IsReference():
		out.Status = campaign.OutcomeCompleted
	default:
		ref, err := t.vi.referenceStdout(timeoutOf(ex))
		if err != nil {
			return err
		}
		if bytes.Equal(stdout, ref) {
			out.Status = campaign.OutcomeMasked
		} else {
			out.Status = campaign.OutcomeSDC
		}
	}
	ex.Result.Outcome = out
	mOutcomes.With(string(out.Status)).Inc()
	t.cleanup()
	return nil
}

// ReadMemory stores the captured stdout as the experiment's observed
// memory, keying the analysis layer's output comparison.
func (t *Target) ReadMemory(ex *core.Experiment) error {
	if ex.Result.Memory == nil {
		ex.Result.Memory = make(map[string][]byte, 1)
	}
	if v, ok := ex.Scratch("proc.stdout"); ok {
		ex.Result.Memory["stdout"] = v.([]byte)
	}
	return nil
}

// Probe checks whether ptrace works here (it is unavailable on
// non-linux builds and in restricted containers): it runs one complete
// traced session against the given binary. Tests call it to skip
// cleanly.
func Probe(victim string) error {
	if _, err := loadVictim(victim); err != nil {
		return err
	}
	lockThread()
	defer unlockThread()
	tr, err := startTraced(victim)
	if err != nil {
		return err
	}
	defer tr.Shutdown()
	if _, err := tr.Resume(); err != nil {
		return err
	}
	return nil
}

func init() {
	core.RegisterTarget(core.TargetInfo{
		Kind:          Kind,
		Description:   "live OS process via ptrace: fork, stop, flip, resume, classify (masked/sdc/crash/hang)",
		Algorithm:     core.RuntimeSWIFI.Name,
		Deterministic: false,
		New: func(cfg core.TargetConfig) (core.TargetSystem, error) {
			return New(cfg)
		},
		SystemData: SystemData,
	})
}

// Interface compliance.
var (
	_ core.TargetSystem           = (*Target)(nil)
	_ core.NondeterministicTarget = (*Target)(nil)
	_ core.Classifier             = (*procError)(nil)
)
