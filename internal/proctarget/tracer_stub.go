//go:build !linux || !amd64

package proctarget

import (
	"fmt"

	"goofi/internal/core"
)

// Live-process injection needs Linux ptrace on amd64. On every other
// platform the tracer is a stub whose construction fails with a
// persistent (non-retryable) error; tests Probe first and t.Skip.

func lockThread()     {}
func unlockThread()   {}
func killProcess(int) {}

var errUnavailable = &procError{class: core.Persistent,
	err: fmt.Errorf("proctarget: ptrace is only supported on linux/amd64")}

type tracer struct{}

func startTraced(string) (*tracer, error) { return nil, errUnavailable }

func (t *tracer) PID() int                   { return 0 }
func (t *tracer) SetBreakpoint(uint64) error { return errUnavailable }
func (t *tracer) ContToBreakpoint() (bool, *exitInfo, error) {
	return false, nil, errUnavailable
}
func (t *tracer) Step(uint64) (uint64, *exitInfo, error) { return 0, nil, errUnavailable }
func (t *tracer) FlipRegisterBits([][2]int) error        { return errUnavailable }
func (t *tracer) FlipMemoryBit(uint64, byte) error       { return errUnavailable }
func (t *tracer) Resume() (*exitInfo, error)             { return nil, errUnavailable }
func (t *tracer) Stdout() []byte                         { return nil }
func (t *tracer) Shutdown()                              {}
