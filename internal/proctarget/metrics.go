package proctarget

import "goofi/internal/telemetry"

// Telemetry for live-process campaigns: experiment volume, the outcome
// class histogram (the ZOFI taxonomy is the headline result of a proc
// campaign) and single-step work, which dominates wall clock.
var (
	mExperiments = telemetry.NewCounter("goofi_proc_experiments_total",
		"Live-process experiments started (victims forked under ptrace).")
	mOutcomes = telemetry.NewCounterVec("goofi_proc_outcomes_total",
		"Live-process experiment outcomes by class.", "class")
	mSteps = telemetry.NewCounter("goofi_proc_singlesteps_total",
		"Single-step instructions executed reaching injection points.")
)
