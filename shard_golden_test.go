// Golden end-to-end test for sharded execution: the quickstart campaign
// run through the daemon's sharded path (coordinator + in-process shard
// workers) must render the exact analysis report stored in testdata/ —
// the same file the solo quickstart run is pinned to. One golden file,
// two execution strategies: if sharding shifts a single outcome, this
// test diffs.
package goofi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/server"
	"goofi/internal/sqldb"
)

func TestQuickstartShardedReportGolden(t *testing.T) {
	dir := t.TempDir()
	s, err := server.New(server.Config{DataDir: dir, Boards: 4, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	camp := quickstartCampaign()
	blob, err := json.Marshal(server.SubmitRequest{
		Tenant: "golden", Campaign: camp, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		hr, err := http.Get(ts.URL + "/api/v1/campaigns/golden/quickstart")
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(hr.Body).Decode(&st)
		hr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.StateDone {
			break
		}
		if st.State == server.StateFailed || st.State == server.StateCancelled {
			t.Fatalf("sharded quickstart ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded quickstart stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	db, err := sqldb.OpenAt(filepath.Join(dir, "golden.db"), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	store, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.AnalyzeAndStore(store, camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Render()

	// Pinned to the solo quickstart golden on purpose; -update belongs to
	// TestQuickstartReportGolden, which defines the ground truth.
	golden := filepath.Join("testdata", "quickstart_report.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run TestQuickstartReportGolden with -update first)", err)
	}
	if got != string(want) {
		t.Errorf("sharded quickstart report drifted from the solo golden.\n got:\n%s\nwant:\n%s", got, want)
	}
}
