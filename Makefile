GO ?= go
FUZZTIME ?= 15s

.PHONY: tier1 tier2 build vet test race bench fuzz

# tier1 is the gate every PR must keep green: full build, vet, and the
# test suite under the race detector. The snapshot/forwarding tests in
# core and thor run explicitly with -count 1 so the checkpoint machinery
# is always exercised fresh under -race, never served from the cache;
# the chaos/retry/quarantine tests likewise, because the fault-tolerance
# layer is all goroutine coordination (watchdogs, pull queue, breaker).
# The telemetry line pins the observability invariants: the registry's
# concurrent hot path, the exposition format, and the differential proof
# that instrumentation never changes LoggedSystemState. The netchaos
# line is the partition-tolerance pin: sharded campaigns crossing a
# seeded hostile network (drops, dup deliveries, truncation, full and
# asymmetric partitions, worker auth) must stay byte-identical to solo.
tier1:
	$(GO) build ./...
	$(GO) vet ./internal/core/ ./internal/thor/
	$(GO) vet ./...
	$(GO) test -race ./internal/core/ ./internal/thor/ ./internal/scifi/ . -run 'Snapshot|Forward' -count 1
	$(GO) test -race ./internal/thor/ ./internal/trigger/ . -run 'FastPath|RunUntilFast|StepBurst|Placement' -count 1
	$(GO) test -race ./internal/core/ ./internal/chaos/ . -run 'Chaos|Retry|Quarantine|Watchdog|Panic|InvalidRun|DrainsAndFlushes' -count 1
	$(GO) test -race ./internal/telemetry/ . -run 'Telemetry|Registry|Prometheus|Handler|Progress' -count 1
	$(GO) test -race ./internal/server/ ./internal/core/ ./internal/campaign/ -run 'Differential|Fleet|Tenant|Admission|Cancel|Submit' -count 1
	$(GO) test -race ./internal/shard/ ./internal/core/ . -run 'Shard|Partition|Coalesce' -count 1
	$(GO) test -race ./internal/shard/ ./internal/chaos/ -run 'NetChaos|NetRoundTripper|NetMaxFaults|NetDeterministic|Transport|Unauthorized|Delivery|Churn' -count 1
	$(GO) test -race ./internal/proctarget/ ./internal/core/ -run 'Proc|Framework|TargetRegistry|TargetDeterministic' -count 1
	$(GO) test -race ./...

# tier2 is the crash-safety suite: the WAL crash-injection and resume
# equivalence tests, the golden end-to-end report, plus a short fuzz
# smoke of the SQL front end.
tier2:
	$(GO) test ./internal/sqldb/ -run 'WAL|Crash|Checkpoint|Stale|OpenAt|Replay' -count 1
	$(GO) test ./internal/campaign/ -run 'Checkpoint|RecoverCursor|Sink' -count 1
	$(GO) test ./internal/core/ -run 'Resume|Pause' -count 1
	$(GO) test ./cmd/goofi/ -run 'Resume' -count 1
	$(GO) test . -run 'Golden' -count 1
	$(MAKE) fuzz FUZZTIME=5s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the microbenchmark numbers, runs the campaign
# benchmarks three times for stable medians, and emits the comparison
# blobs: checkpoint fast-forwarding (on vs off) into BENCH_PR3.json, the
# fault-tolerance layer's healthy-path overhead into BENCH_PR4.json,
# the fully-observed campaign's instrumentation overhead into
# BENCH_PR5.json (acceptance: overhead_ratio <= 1.05), the goofid
# service comparison (four concurrent tenant campaigns vs four
# sequential CLI runs, plus per-submit API latency) into BENCH_PR6.json,
# and the sharded-vs-solo comparison into BENCH_PR7.json (acceptance:
# overhead_ratio <= 1.10 on one CPU, where no speedup is possible).
# BENCH_PR8.json crosses checkpoint placement {interval, optimal} with
# thor execution {fastpath, steppath} on the PID campaign (acceptance:
# cycles_emulated_optimal <= cycles_emulated_interval — a deterministic
# cycle count, never a wall-clock comparison).
# BENCH_PR10.json measures the live-process (ptrace) target: 500 seeded
# experiments against the matmul victim — experiments/sec, the
# outcome-class distribution, and plan-hash identity across reps
# (acceptance: plan_identical_across_reps == true).
bench:
	$(GO) test . -run xxx -bench . -benchtime 1x
	$(GO) test . -run xxx -bench BenchmarkCampaignPID -benchtime 1x -count 3
	$(GO) run ./cmd/goofi-bench -reps 3 -o BENCH_PR3.json
	$(GO) run ./cmd/goofi-bench -mode robustness -reps 5 -o BENCH_PR4.json
	$(GO) run ./cmd/goofi-bench -mode telemetry -reps 5 -o BENCH_PR5.json
	$(GO) run ./cmd/goofi-bench -mode service -n 400 -reps 3 -o BENCH_PR6.json
	$(GO) run ./cmd/goofi-bench -mode shard -n 2000 -reps 5 -o BENCH_PR7.json
	$(GO) run ./cmd/goofi-bench -mode forward -reps 5 -o BENCH_PR8.json
	$(GO) run ./cmd/goofi-bench -mode proc -n 500 -reps 3 -o BENCH_PR10.json

# fuzz runs each native Go fuzzer for a bounded time (override with
# FUZZTIME=1m etc.). New corpus entries land in the build cache;
# crashers land in internal/sqldb/testdata/fuzz and should be committed
# alongside the fix.
fuzz:
	$(GO) test ./internal/sqldb/ -run '^$$' -fuzz FuzzParseSQL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqldb/ -run '^$$' -fuzz FuzzLexer -fuzztime $(FUZZTIME)
