GO ?= go

.PHONY: tier1 build vet test race bench

# tier1 is the gate every PR must keep green: full build, vet, and the
# test suite under the race detector.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test . -run xxx -bench . -benchtime 1x
