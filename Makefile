GO ?= go
FUZZTIME ?= 15s

.PHONY: tier1 tier2 build vet test race bench fuzz

# tier1 is the gate every PR must keep green: full build, vet, and the
# test suite under the race detector.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# tier2 is the crash-safety suite: the WAL crash-injection and resume
# equivalence tests, the golden end-to-end report, plus a short fuzz
# smoke of the SQL front end.
tier2:
	$(GO) test ./internal/sqldb/ -run 'WAL|Crash|Checkpoint|Stale|OpenAt|Replay' -count 1
	$(GO) test ./internal/campaign/ -run 'Checkpoint|RecoverCursor|Sink' -count 1
	$(GO) test ./internal/core/ -run 'Resume|Pause' -count 1
	$(GO) test ./cmd/goofi/ -run 'Resume' -count 1
	$(GO) test . -run 'Golden' -count 1
	$(MAKE) fuzz FUZZTIME=5s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test . -run xxx -bench . -benchtime 1x

# fuzz runs each native Go fuzzer for a bounded time (override with
# FUZZTIME=1m etc.). New corpus entries land in the build cache;
# crashers land in internal/sqldb/testdata/fuzz and should be committed
# alongside the fix.
fuzz:
	$(GO) test ./internal/sqldb/ -run '^$$' -fuzz FuzzParseSQL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqldb/ -run '^$$' -fuzz FuzzLexer -fuzztime $(FUZZTIME)
