// Benchmarks regenerating the measurements behind EXPERIMENTS.md: one
// bench per experiment (E1–E8) plus microbenchmarks of the substrates.
// Shape metrics (class fractions, coverage) are attached via
// b.ReportMetric so `go test -bench` output carries them alongside the
// timings; the full tables come from `go run ./cmd/goofi-experiments`.
package goofi_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"goofi/internal/analysis"
	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/swifi"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func benchStore(b testing.TB) (*campaign.Store, *campaign.TargetSystemData) {
	b.Helper()
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		b.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		b.Fatal(err)
	}
	return st, tsd
}

func sortCampaign(name string, n int, seed int64, locs []string) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      locs,
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func pidCampaign(name string, n int, seed int64) *campaign.Campaign {
	wl := workload.PID()
	wl.OutputTail = 10
	wl.OutputTolerance = 512
	wl.ResultTolerance = 512
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu", "icache", "dcache"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{200, 8000},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 400_000, MaxIterations: 80},
		Workload:       wl,
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
}

func runCampaign(b testing.TB, st *campaign.Store, tsd *campaign.TargetSystemData,
	tgt core.TargetSystem, alg core.Algorithm, camp *campaign.Campaign,
	opts ...core.RunnerOption) (*core.Summary, *analysis.Report) {
	b.Helper()
	if err := st.PutCampaign(camp); err != nil {
		b.Fatal(err)
	}
	if err := st.DeleteExperiments(camp.Name); err != nil {
		b.Fatal(err)
	}
	sink := campaign.NewBatchingSink(st, 0)
	opts = append(opts, core.WithSink(sink))
	r, err := core.NewRunner(tgt, alg, camp, tsd, opts...)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
	rep, err := analysis.AnalyzeAndStore(st, camp.Name)
	if err != nil {
		b.Fatal(err)
	}
	return sum, rep
}

// BenchmarkSCIFIExperiment measures one complete SCIFI fault injection
// experiment (Fig 2 sequence) including scan-chain read/inject/write.
func BenchmarkSCIFIExperiment(b *testing.B) {
	camp := sortCampaign("bench-one", 1, 1, []string{"cpu"})
	tgt := scifi.New(thor.DefaultConfig())
	f, err := thor.ScanFieldByName("cpu.r3")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := &core.Experiment{
			Campaign: camp, Seq: 0, Name: "bench/exp",
			Fault:   &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{f.Offset + i%32}},
			Trigger: trigger.Spec{Kind: "cycle", Cycle: 1000},
		}
		if err := core.SCIFI.Run(tgt, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignPID is experiment E1: a SCIFI campaign over the PID
// control application with the taxonomy fractions reported as metrics.
// The boards=4 variant runs the same campaign on the worker-pool
// scheduler with four simulated boards; outcomes are identical by
// construction (plan-first determinism), only wall clock changes. The
// no-checkpoints variant disables fast-forwarding, so the gap in
// cycles-emulated (and ns/op) against boards=1 is the checkpoint win.
func BenchmarkCampaignPID(b *testing.B) {
	const n = 40
	variants := []struct {
		name   string
		boards int
		fwOff  bool
	}{
		{"boards=1", 1, false},
		{"boards=4", 4, false},
		{"boards=1/no-checkpoints", 1, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			st, tsd := benchStore(b)
			var opts []core.RunnerOption
			if v.boards > 1 {
				opts = append(opts, core.WithBoards(v.boards, func() core.TargetSystem {
					return scifi.New(thor.DefaultConfig())
				}))
			}
			if v.fwOff {
				opts = append(opts, core.WithForwarding(core.ForwardConfig{Disabled: true}))
			}
			var sum *core.Summary
			var rep *analysis.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, rep = runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI,
					pidCampaign("bench-e1", n, int64(i+1)), opts...)
			}
			b.StopTimer()
			b.ReportMetric(rep.Fraction(analysis.ClassDetected), "detected/inj")
			b.ReportMetric(rep.Fraction(analysis.ClassEscaped), "escaped/inj")
			b.ReportMetric(rep.Fraction(analysis.ClassLatent), "latent/inj")
			b.ReportMetric(rep.Fraction(analysis.ClassOverwritten), "overwritten/inj")
			b.ReportMetric(rep.Coverage.P, "coverage")
			b.ReportMetric(float64(sum.CyclesEmulated), "cycles-emulated")
			b.ReportMetric(float64(sum.Forwarded), "forwarded")
		})
	}
}

// BenchmarkNormalVsDetailMode is experiment E2: detail-mode logging cost.
func BenchmarkNormalVsDetailMode(b *testing.B) {
	for _, mode := range []campaign.LogMode{campaign.LogNormal, campaign.LogDetail} {
		b.Run(string(mode), func(b *testing.B) {
			st, tsd := benchStore(b)
			camp := sortCampaign("bench-e2", 5, 3, []string{"cpu"})
			camp.Termination.TimeoutCycles = 30_000
			camp.LogMode = mode
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
			}
		})
	}
}

// BenchmarkSCIFIvsSWIFI is experiment E3: per-experiment cost and
// effectiveness of the two techniques on the same workload.
func BenchmarkSCIFIvsSWIFI(b *testing.B) {
	const n = 30
	b.Run("scifi", func(b *testing.B) {
		st, tsd := benchStore(b)
		var rep *analysis.Report
		for i := 0; i < b.N; i++ {
			_, rep = runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI,
				sortCampaign("bench-e3s", n, 7, []string{"cpu", "icache", "dcache"}))
		}
		b.ReportMetric(rep.Coverage.P, "coverage")
		b.ReportMetric(rep.EffectiveRate.P, "effective")
	})
	b.Run("swifi-preruntime", func(b *testing.B) {
		imgSize, err := swifi.ImageSize(workload.Sort().Source)
		if err != nil {
			b.Fatal(err)
		}
		st, err := campaign.NewStore(sqldb.Open())
		if err != nil {
			b.Fatal(err)
		}
		tsd := swifi.TargetSystemData("thor-swifi", imgSize)
		if err := st.PutTargetSystem(tsd); err != nil {
			b.Fatal(err)
		}
		camp := sortCampaign("bench-e3w", n, 7, []string{"mem"})
		camp.TargetName = "thor-swifi"
		camp.ChainName = swifi.MemoryChainName
		camp.RandomWindow = [2]uint64{}
		camp.Trigger = trigger.Spec{Kind: "cycle", Cycle: 0}
		var rep *analysis.Report
		for i := 0; i < b.N; i++ {
			_, rep = runCampaign(b, st, tsd, swifi.New(thor.DefaultConfig(), swifi.PreRuntime),
				core.PreRuntimeSWIFI, camp)
		}
		b.ReportMetric(rep.Coverage.P, "coverage")
		b.ReportMetric(rep.EffectiveRate.P, "effective")
	})
}

// BenchmarkAssertionsRecovery is experiment E4: the hardened controller's
// critical-failure fraction vs the bare one.
func BenchmarkAssertionsRecovery(b *testing.B) {
	const n = 30
	variants := []struct {
		name string
		wl   campaign.WorkloadSpec
	}{
		{"bare", workload.PID()},
		{"hardened", workload.PIDAssert()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			st, tsd := benchStore(b)
			camp := pidCampaign("bench-e4", n, 42)
			wl := v.wl
			wl.OutputTail = 10
			wl.OutputTolerance = 512
			wl.ResultTolerance = 512
			camp.Workload = wl
			camp.Locations = []string{"cpu"}
			camp.EnvSim = &campaign.EnvSimSpec{Name: "engine"}
			camp.Termination.MaxIterations = 100
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				_, rep = runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
			}
			b.ReportMetric(rep.Fraction(analysis.ClassEscaped), "critical/inj")
			b.ReportMetric(float64(rep.Recovered), "recoveries")
		})
	}
}

// BenchmarkPreInjection is experiment E5: the liveness filter's cost and
// its effective-yield improvement.
func BenchmarkPreInjection(b *testing.B) {
	const n = 30
	regs := make([]string, 0, thor.NumRegs)
	for i := 0; i < thor.NumRegs; i++ {
		regs = append(regs, fmt.Sprintf("cpu.r%d", i))
	}
	b.Run("analysis", func(b *testing.B) {
		camp := sortCampaign("bench-e5a", n, 5, regs)
		for i := 0; i < b.N; i++ {
			if _, err := preinject.AnalyzeWorkload(thor.DefaultConfig(), camp); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, filtered := range []bool{false, true} {
		name := "plain"
		if filtered {
			name = "filtered"
		}
		b.Run(name, func(b *testing.B) {
			st, tsd := benchStore(b)
			camp := sortCampaign("bench-e5-"+name, n, 5, regs)
			var opts []core.RunnerOption
			if filtered {
				a, err := preinject.AnalyzeWorkload(thor.DefaultConfig(), camp)
				if err != nil {
					b.Fatal(err)
				}
				opts = append(opts, core.WithInjectionFilter(a.Filter()))
			}
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				_, rep = runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp, opts...)
			}
			b.ReportMetric(rep.EffectiveRate.P, "effective")
		})
	}
}

// BenchmarkFaultModels is experiment E6: the four fault models on the
// same fault locations.
func BenchmarkFaultModels(b *testing.B) {
	const n = 30
	models := []faultmodel.Spec{
		{Kind: faultmodel.Transient},
		{Kind: faultmodel.Intermittent, ActiveProb: 0.3},
		{Kind: faultmodel.StuckAt0},
		{Kind: faultmodel.StuckAt1},
	}
	for _, m := range models {
		b.Run(string(m.Kind), func(b *testing.B) {
			st, tsd := benchStore(b)
			camp := sortCampaign("bench-e6", n, 11, []string{"cpu"})
			camp.FaultModel = m
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				_, rep = runCampaign(b, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
			}
			b.ReportMetric(rep.EffectiveRate.P, "effective")
			b.ReportMetric(rep.Fraction(analysis.ClassOverwritten), "overwritten/inj")
		})
	}
}

// BenchmarkLoggedStateInsert is experiment E7: LoggedSystemState insert
// throughput.
func BenchmarkLoggedStateInsert(b *testing.B) {
	st, tsd := benchStore(b)
	camp := sortCampaign("bench-e7", 1, 1, []string{"cpu"})
	if err := st.PutCampaign(camp); err != nil {
		b.Fatal(err)
	}
	_ = tsd
	state := campaign.StateVector{Memory: map[string][]byte{"x": make([]byte, 64)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &campaign.ExperimentRecord{
			Name:     fmt.Sprintf("bench-e7/row%09d", i),
			Campaign: "bench-e7",
			Step:     -1,
			Data:     campaign.ExperimentData{Seq: i},
			State:    state,
		}
		if err := st.LogExperiment(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoggedStateInsertWAL is E7 with durability on: the store sits
// on a file-backed database whose writes go through the write-ahead log
// (SyncBarrier, the goofi CLI default — appends buffer, fsync only at
// checkpoint barriers). The gap to BenchmarkLoggedStateInsert is the
// price of crash recovery on the insert hot path.
func BenchmarkLoggedStateInsertWAL(b *testing.B) {
	db, err := sqldb.OpenAt(filepath.Join(b.TempDir(), "bench.db"), sqldb.SyncBarrier)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	st, err := campaign.NewStore(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PutTargetSystem(scifi.TargetSystemData("thor-board")); err != nil {
		b.Fatal(err)
	}
	camp := sortCampaign("bench-e7", 1, 1, []string{"cpu"})
	if err := st.PutCampaign(camp); err != nil {
		b.Fatal(err)
	}
	state := campaign.StateVector{Memory: map[string][]byte{"x": make([]byte, 64)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &campaign.ExperimentRecord{
			Name:     fmt.Sprintf("bench-e7/row%09d", i),
			Campaign: "bench-e7",
			Step:     -1,
			Data:     campaign.ExperimentData{Seq: i},
			State:    state,
		}
		if err := st.LogExperiment(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := db.Barrier(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTriggers is experiment E8: the cost of reaching the injection
// point with each trigger kind (stepping with per-instruction predicates
// vs plain cycle counting).
func BenchmarkTriggers(b *testing.B) {
	prog := workload.Sort()
	specs := []trigger.Spec{
		{Kind: "cycle", Cycle: 1500},
		{Kind: "instret", Count: 300},
		{Kind: "branch", Occurrence: 25},
		{Kind: "rtc", Period: 640, Occurrence: 2},
	}
	for _, spec := range specs {
		b.Run(spec.Kind, func(b *testing.B) {
			img := mustAssemble(b, prog.Source)
			for i := 0; i < b.N; i++ {
				c := thor.New(thor.DefaultConfig())
				if err := c.LoadMemory(0, img); err != nil {
					b.Fatal(err)
				}
				tr, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				fired, _ := trigger.RunUntil(c, tr, 100_000)
				if !fired {
					b.Fatal("trigger never fired")
				}
			}
		})
	}
}

// BenchmarkScanChainExchange measures one full internal-chain
// read-modify-write through the TAP (the SCIFI injection primitive).
func BenchmarkScanChainExchange(b *testing.B) {
	tgt := scifi.New(thor.DefaultConfig())
	ctrl := tgt.Controller()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := ctrl.ReadInternal()
		if err != nil {
			b.Fatal(err)
		}
		v.Flip(i % v.Len())
		if err := ctrl.WriteInternal(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUExecution measures raw THOR-S simulation speed.
func BenchmarkCPUExecution(b *testing.B) {
	img := mustAssemble(b, workload.Sort().Source)
	c := thor.New(thor.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c.Reset()
		c.ClearMemory()
		if err := c.LoadMemory(0, img); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if st := c.Run(1_000_000); st != thor.StatusHalted {
			b.Fatalf("status %v", st)
		}
	}
	b.ReportMetric(float64(c.Instret()), "instrs/op")
}

func mustAssemble(b *testing.B, source string) []byte {
	b.Helper()
	prog, err := asm.Assemble(source)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Image
}
