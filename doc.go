// Package goofi is a Go reproduction of GOOFI, the Generic Object-Oriented
// Fault Injection tool (Aidemark, Vinter, Folkesson, Karlsson — DSN 2003).
//
// GOOFI runs fault injection campaigns against target systems through two
// pluggable abstractions: fault injection algorithms (technique-level step
// sequences such as SCIFI and pre-runtime SWIFI) and target system
// interfaces (per-target implementations of the algorithms' abstract
// building blocks). All configuration and results live in a SQL database
// with the three-table schema of the paper's Fig 4.
//
// The packages under internal/ form the complete system:
//
//	core       — fault injection algorithms, Framework template, runner
//	campaign   — TargetSystemData / CampaignData / LoggedSystemState model
//	sqldb      — embedded SQL database engine (the storage substrate)
//	thor       — THOR-S microprocessor simulator (the target substrate)
//	scanchain  — IEEE 1149.1 TAP controller and scan chains
//	scifi      — scan-chain implemented fault injection target
//	swifi      — pre-runtime and runtime SWIFI targets
//	pinlevel   — pin-level injection through boundary-scan EXTEST
//	faultmodel — transient / stuck-at / intermittent fault models
//	trigger    — breakpoint, cycle, data-access, branch, call, rtc triggers
//	preinject  — pre-injection liveness analysis
//	envsim     — environment simulators closing the control loop
//	workload   — built-in THOR-S assembly workloads
//	analysis   — §3.4 outcome classification and generated SQL analysis
//	asm        — THOR-S assembler
//	bitvec     — bit vectors underlying scan chains and fault masks
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced experiments. bench_test.go in this
// directory regenerates every experiment's measurements.
package goofi
