package main

// The service mode: four tenant campaigns through a live goofid daemon
// at once versus the same four campaigns run back to back the CLI way.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"goofi/internal/server"
)

const serviceCampaigns = 4

// serviceResult is the -mode service blob. The daemon side runs all
// four campaigns concurrently on a shared four-board fleet; the
// sequential side runs them one after another, each on one board — the
// same total work on the same definitions. concurrency_speedup is
// median sequential wall time over median service wall time, and the
// submit latencies measure the API's admission cost alone. Emulation is
// CPU-bound, so the speedup is capped by the host's core count (cpus in
// the blob): on one core the concurrent batch can only tie the
// sequential one minus coordination overhead.
type serviceResult struct {
	Benchmark         string    `json:"benchmark"`
	Date              string    `json:"date"`
	CPUs              int       `json:"cpus"`
	Experiments       int       `json:"experiments"`
	Campaigns         int       `json:"campaigns"`
	FleetBoards       int       `json:"fleet_boards"`
	BoardsPerCampaign int       `json:"boards_per_campaign"`
	Reps              int       `json:"reps"`
	ServiceWallMS     []float64 `json:"service_wall_ms"`
	SequentialWallMS  []float64 `json:"sequential_wall_ms"`
	SubmitLatencyMS   []float64 `json:"submit_latency_ms"`
	ConcurrencySpeed  float64   `json:"concurrency_speedup"`
	MedianSubmitMS    float64   `json:"median_submit_ms"`
}

// serviceRep runs one repetition through a fresh daemon and returns the
// batch wall time plus the four submit latencies.
func serviceRep(n, boards int, seed int64) (float64, []float64, error) {
	dir, err := os.MkdirTemp("", "goofi-bench-service")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{
		DataDir:       dir,
		Boards:        serviceCampaigns * boards,
		MaxConcurrent: serviceCampaigns,
	})
	if err != nil {
		return 0, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	start := time.Now()
	var lat []float64
	for i := 0; i < serviceCampaigns; i++ {
		req := server.SubmitRequest{
			Tenant:   fmt.Sprintf("tenant%d", i),
			Campaign: pidCampaign("bench-service", n, seed),
			Boards:   boards,
		}
		blob, err := json.Marshal(req)
		if err != nil {
			return 0, nil, err
		}
		t0 := time.Now()
		resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(blob))
		if err != nil {
			return 0, nil, err
		}
		lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return 0, nil, fmt.Errorf("submit %d: %s", i, resp.Status)
		}
	}
	for i := 0; i < serviceCampaigns; i++ {
		url := fmt.Sprintf("%s/api/v1/campaigns/tenant%d/bench-service", base, i)
		for {
			resp, err := http.Get(url)
			if err != nil {
				return 0, nil, err
			}
			var st server.JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return 0, nil, err
			}
			if st.State == server.StateDone {
				break
			}
			if st.State == server.StateFailed || st.State == server.StateCancelled {
				return 0, nil, fmt.Errorf("campaign tenant%d ended %s: %s", i, st.State, st.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, lat, nil
}

// sequentialRep runs the same four campaigns back to back on one board
// each, the way four `goofi run` invocations would.
func sequentialRep(n, boards int, seed int64) (float64, error) {
	start := time.Now()
	for i := 0; i < serviceCampaigns; i++ {
		if _, err := runOnce(pidCampaign("bench-service", n, seed), boards, true); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

func medianF(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}

func runService(n, reps, boards int, seed int64, out string) error {
	res := serviceResult{
		Benchmark:         "BenchmarkCampaignPID/service",
		Date:              time.Now().UTC().Format("2006-01-02"),
		CPUs:              runtime.NumCPU(),
		Experiments:       n,
		Campaigns:         serviceCampaigns,
		FleetBoards:       serviceCampaigns * boards,
		BoardsPerCampaign: boards,
		Reps:              reps,
	}
	// Untimed warmup of both paths.
	if _, _, err := serviceRep(n, boards, seed); err != nil {
		return err
	}
	if _, err := sequentialRep(n, boards, seed); err != nil {
		return err
	}
	for rep := 0; rep < reps; rep++ {
		wall, lat, err := serviceRep(n, boards, seed)
		if err != nil {
			return err
		}
		res.ServiceWallMS = append(res.ServiceWallMS, wall)
		res.SubmitLatencyMS = append(res.SubmitLatencyMS, lat...)
		seq, err := sequentialRep(n, boards, seed)
		if err != nil {
			return err
		}
		res.SequentialWallMS = append(res.SequentialWallMS, seq)
	}
	res.ConcurrencySpeed = medianF(res.SequentialWallMS) / medianF(res.ServiceWallMS)
	res.MedianSubmitMS = medianF(res.SubmitLatencyMS)
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("service: %.1fms for %d campaigns; sequential: %.1fms; speedup %.2fx on %d cpu(s); submit %.2fms (%s)\n",
		medianF(res.ServiceWallMS), serviceCampaigns, medianF(res.SequentialWallMS),
		res.ConcurrencySpeed, res.CPUs, res.MedianSubmitMS, out)
	return os.WriteFile(out, blob, 0o644)
}
