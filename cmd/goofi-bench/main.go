// Command goofi-bench measures campaign-scheduler features on the E1 PID
// campaign (BenchmarkCampaignPID's workload): the same campaign runs with
// a feature on and off for a number of repetitions, and the wall-clock
// times and emulated-cycle counts are emitted as one comparable JSON
// blob. `make bench` writes both blobs:
//
//	go run ./cmd/goofi-bench -o BENCH_PR3.json
//	go run ./cmd/goofi-bench -mode robustness -o BENCH_PR4.json
//	go run ./cmd/goofi-bench -mode telemetry -o BENCH_PR5.json
//	go run ./cmd/goofi-bench -mode service -o BENCH_PR6.json
//	go run ./cmd/goofi-bench -mode shard -o BENCH_PR7.json
//
// The forwarding mode compares checkpoint fast-forwarding on vs off; the
// robustness mode compares a healthy campaign with the fault-tolerance
// layer (watchdogs, retry accounting, circuit breaker) armed vs the bare
// scheduler — its overhead_ratio is the retry path's cost when nothing
// ever fails, and must stay within a few percent of 1. The telemetry
// mode compares a fully observed campaign (span tracer, progress
// tracker, live /metrics server scraped once a second) against the bare
// scheduler; its overhead_ratio bounds the instrumentation cost. The
// service mode runs four tenant campaigns concurrently through a live
// goofid daemon (shared four-board fleet, HTTP submissions) against the
// same four campaigns run back to back the CLI way, and also reports
// the per-submit API latency.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// sample is one campaign execution's measurements.
type sample struct {
	WallMS         float64 `json:"wall_ms"`
	CyclesEmulated uint64  `json:"cycles_emulated"`
	CyclesSaved    uint64  `json:"cycles_saved"`
	Forwarded      int     `json:"forwarded"`
}

// result is the emitted blob. The ratios compare the median forwarding-on
// sample against the median forwarding-off sample.
type result struct {
	Benchmark        string   `json:"benchmark"`
	Date             string   `json:"date"`
	Experiments      int      `json:"experiments"`
	Boards           int      `json:"boards"`
	Reps             int      `json:"reps"`
	ForwardingOn     []sample `json:"forwarding_on"`
	ForwardingOff    []sample `json:"forwarding_off"`
	CycleReduction   float64  `json:"emulated_cycle_reduction"`
	WallClockSpeedup float64  `json:"wall_clock_speedup"`
}

func main() {
	n := flag.Int("n", 40, "experiments per campaign (BenchmarkCampaignPID uses 40)")
	reps := flag.Int("reps", 3, "repetitions per configuration")
	boards := flag.Int("boards", 1, "simulated boards")
	seed := flag.Int64("seed", 1, "campaign seed")
	mode := flag.String("mode", "forwarding", "comparison: forwarding, robustness, telemetry, service, shard, proc, or forward (placement x fastpath)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	var err error
	switch *mode {
	case "forwarding":
		err = run(*n, *reps, *boards, *seed, *out)
	case "forward":
		err = runForward(*n, *reps, *boards, *seed, *out)
	case "robustness":
		err = runRobustness(*n, *reps, *boards, *seed, *out)
	case "telemetry":
		err = runTelemetry(*n, *reps, *boards, *seed, *out)
	case "service":
		err = runService(*n, *reps, *boards, *seed, *out)
	case "shard":
		err = runShard(*n, *reps, *boards, *seed, *out)
	case "proc":
		err = runProc(*n, *reps, *boards, *seed, *out)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goofi-bench:", err)
		os.Exit(1)
	}
}

// pidCampaign mirrors BenchmarkCampaignPID's E1 campaign definition.
func pidCampaign(name string, n int, seed int64) *campaign.Campaign {
	wl := workload.PID()
	wl.OutputTail = 10
	wl.OutputTolerance = 512
	wl.ResultTolerance = 512
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu", "icache", "dcache"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{200, 8000},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 400_000, MaxIterations: 80},
		Workload:       wl,
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
}

// runOnce executes the campaign on a fresh in-memory store, including the
// analysis pass, exactly as the benchmark does.
func runOnce(camp *campaign.Campaign, boards int, forwarding bool, extra ...core.RunnerOption) (sample, error) {
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return sample{}, err
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		return sample{}, err
	}
	if err := st.PutCampaign(camp); err != nil {
		return sample{}, err
	}
	sink := campaign.NewBatchingSink(st, 0)
	opts := []core.RunnerOption{
		core.WithSink(sink),
		core.WithBoards(boards, func() core.TargetSystem { return scifi.New(thor.DefaultConfig()) }),
	}
	if !forwarding {
		opts = append(opts, core.WithForwarding(core.ForwardConfig{Disabled: true}))
	}
	opts = append(opts, extra...)
	r, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd, opts...)
	if err != nil {
		return sample{}, err
	}
	start := time.Now()
	sum, err := r.Run(context.Background())
	if err != nil {
		return sample{}, err
	}
	if err := sink.Close(); err != nil {
		return sample{}, err
	}
	if _, err := analysis.AnalyzeAndStore(st, camp.Name); err != nil {
		return sample{}, err
	}
	return sample{
		WallMS:         float64(time.Since(start).Microseconds()) / 1000,
		CyclesEmulated: sum.CyclesEmulated,
		CyclesSaved:    sum.CyclesSaved,
		Forwarded:      sum.Forwarded,
	}, nil
}

// medianWall returns the sample with the median wall time.
func medianWall(ss []sample) sample {
	sorted := append([]sample(nil), ss...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].WallMS < sorted[i].WallMS {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}

func run(n, reps, boards int, seed int64, out string) error {
	res := result{
		Benchmark:   "BenchmarkCampaignPID",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Experiments: n,
		Boards:      boards,
		Reps:        reps,
	}
	// One untimed warmup per configuration so the first measured rep is
	// not paying JIT-free Go's cold caches (page faults, branch state).
	for _, fwd := range []bool{true, false} {
		if _, err := runOnce(pidCampaign("bench-fwd", n, seed), boards, fwd); err != nil {
			return err
		}
	}
	for rep := 0; rep < reps; rep++ {
		camp := pidCampaign("bench-fwd", n, seed)
		s, err := runOnce(camp, boards, true)
		if err != nil {
			return err
		}
		res.ForwardingOn = append(res.ForwardingOn, s)
		camp = pidCampaign("bench-fwd", n, seed)
		s, err = runOnce(camp, boards, false)
		if err != nil {
			return err
		}
		res.ForwardingOff = append(res.ForwardingOff, s)
	}
	on, off := medianWall(res.ForwardingOn), medianWall(res.ForwardingOff)
	res.CycleReduction = float64(off.CyclesEmulated) / float64(on.CyclesEmulated)
	res.WallClockSpeedup = off.WallMS / on.WallMS
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("forwarding on: %d cycles emulated; off: %d; reduction %.2fx, wall %.2fx (%s)\n",
		on.CyclesEmulated, off.CyclesEmulated, res.CycleReduction, res.WallClockSpeedup, out)
	return os.WriteFile(out, blob, 0o644)
}

// robustnessResult compares a healthy campaign with the fault-tolerance
// layer armed against the bare scheduler. overhead_ratio is median
// robustness-on wall time over median robustness-off wall time; retries
// and invalid runs must both be zero (the harness never fails here — any
// non-zero value means the bench itself is broken).
type robustnessResult struct {
	Benchmark     string   `json:"benchmark"`
	Date          string   `json:"date"`
	Experiments   int      `json:"experiments"`
	Boards        int      `json:"boards"`
	Reps          int      `json:"reps"`
	RobustnessOn  []sample `json:"robustness_on"`
	RobustnessOff []sample `json:"robustness_off"`
	OverheadRatio float64  `json:"overhead_ratio"`
}

// benchRetryPolicy arms every gate of the fault-tolerance layer the way
// a cautious user would: retries, a board circuit breaker, and a
// watchdog deadline generous enough to never fire on a healthy run.
func benchRetryPolicy() core.RunnerOption {
	return core.WithRetryPolicy(core.RetryPolicy{
		MaxRetries:            2,
		BoardFailureThreshold: 3,
		WatchdogTimeout:       30 * time.Second,
	})
}

func runRobustness(n, reps, boards int, seed int64, out string) error {
	res := robustnessResult{
		Benchmark:   "BenchmarkCampaignPID/robustness",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Experiments: n,
		Boards:      boards,
		Reps:        reps,
	}
	for _, on := range []bool{true, false} { // untimed warmup
		opts := []core.RunnerOption{}
		if on {
			opts = append(opts, benchRetryPolicy())
		}
		if _, err := runOnce(pidCampaign("bench-robust", n, seed), boards, true, opts...); err != nil {
			return err
		}
	}
	for rep := 0; rep < reps; rep++ {
		s, err := runOnce(pidCampaign("bench-robust", n, seed), boards, true, benchRetryPolicy())
		if err != nil {
			return err
		}
		res.RobustnessOn = append(res.RobustnessOn, s)
		s, err = runOnce(pidCampaign("bench-robust", n, seed), boards, true)
		if err != nil {
			return err
		}
		res.RobustnessOff = append(res.RobustnessOff, s)
	}
	on, off := medianWall(res.RobustnessOn), medianWall(res.RobustnessOff)
	res.OverheadRatio = on.WallMS / off.WallMS
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("robustness on: %.1fms; off: %.1fms; overhead %.3fx (%s)\n",
		on.WallMS, off.WallMS, res.OverheadRatio, out)
	return os.WriteFile(out, blob, 0o644)
}

// telemetryResult compares a fully observed campaign against the bare
// scheduler. overhead_ratio is median telemetry-on wall time over median
// telemetry-off wall time; the acceptance bound is 1.05 (the span
// tracer, progress tracker, and a live scraper together must cost under
// five percent).
type telemetryResult struct {
	Benchmark     string   `json:"benchmark"`
	Date          string   `json:"date"`
	Experiments   int      `json:"experiments"`
	Boards        int      `json:"boards"`
	Reps          int      `json:"reps"`
	TelemetryOn   []sample `json:"telemetry_on"`
	TelemetryOff  []sample `json:"telemetry_off"`
	OverheadRatio float64  `json:"overhead_ratio"`
}

// runTelemetryOnce executes the campaign with the full observability
// stack attached: span tracer, progress tracker, and an HTTP server
// whose /metrics endpoint is scraped every 50ms for the duration — the
// worst realistic case for exposition-lock contention.
func runTelemetryOnce(camp *campaign.Campaign, boards int) (sample, error) {
	tr := telemetry.NewTracer()
	prog := telemetry.NewProgress(boards)
	srv, err := telemetry.NewServer("127.0.0.1:0", telemetry.Default, prog)
	if err != nil {
		return sample{}, err
	}
	defer srv.Close()
	done := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				resp, err := http.Get("http://" + srv.Addr() + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	s, err := runOnce(camp, boards, true, core.WithTelemetry(tr, prog))
	close(done)
	<-scraped
	return s, err
}

func runTelemetry(n, reps, boards int, seed int64, out string) error {
	res := telemetryResult{
		Benchmark:   "BenchmarkCampaignPID/telemetry",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Experiments: n,
		Boards:      boards,
		Reps:        reps,
	}
	for _, on := range []bool{true, false} { // untimed warmup
		var err error
		if on {
			_, err = runTelemetryOnce(pidCampaign("bench-telemetry", n, seed), boards)
		} else {
			_, err = runOnce(pidCampaign("bench-telemetry", n, seed), boards, true)
		}
		if err != nil {
			return err
		}
	}
	for rep := 0; rep < reps; rep++ {
		s, err := runTelemetryOnce(pidCampaign("bench-telemetry", n, seed), boards)
		if err != nil {
			return err
		}
		res.TelemetryOn = append(res.TelemetryOn, s)
		s, err = runOnce(pidCampaign("bench-telemetry", n, seed), boards, true)
		if err != nil {
			return err
		}
		res.TelemetryOff = append(res.TelemetryOff, s)
	}
	on, off := medianWall(res.TelemetryOn), medianWall(res.TelemetryOff)
	res.OverheadRatio = on.WallMS / off.WallMS
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("telemetry on: %.1fms; off: %.1fms; overhead %.3fx (%s)\n",
		on.WallMS, off.WallMS, res.OverheadRatio, out)
	return os.WriteFile(out, blob, 0o644)
}
