// The proc mode measures the live-process injection target: a seeded
// campaign of register faults against the matmul example victim, each
// experiment a real fork/ptrace/inject/classify cycle. The blob reports
// experiments per second and the outcome-class distribution, and checks
// that the fault plan hash is identical across repetitions — the
// replay contract a nondeterministic target still has to honour.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/proctarget"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
)

// procResult is the BENCH_PR10 blob.
type procResult struct {
	Benchmark            string         `json:"benchmark"`
	Date                 string         `json:"date"`
	CPUs                 int            `json:"cpus"`
	Experiments          int            `json:"experiments"`
	Boards               int            `json:"boards"`
	Reps                 int            `json:"reps"`
	WallMS               []float64      `json:"wall_ms"`
	ExperimentsPerSecond float64        `json:"experiments_per_second"`
	OutcomeClasses       map[string]int `json:"outcome_classes"`
	PlanHash             string         `json:"plan_hash"`
	PlanIdentical        bool           `json:"plan_identical_across_reps"`
}

// buildVictim compiles the matmul example victim into a temp dir.
func buildVictim() (string, func(), error) {
	dir, err := os.MkdirTemp("", "goofi-bench-victim-")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	bin := filepath.Join(dir, "matmul")
	cmd := exec.Command("go", "build", "-o", bin, "./examples/victims/matmul")
	if out, err := cmd.CombinedOutput(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("build victim: %v\n%s", err, out)
	}
	return bin, cleanup, nil
}

// procCampaign defines the benchmark campaign: single-bit transient
// register faults in a short single-step window, 1s watchdog.
func procCampaign(victim string, n int, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           "bench-proc",
		TargetName:     "proc-board",
		ChainName:      proctarget.RegisterChainName,
		Locations:      []string{"gpr"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{1, 200},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 1_000_000}, // 1s watchdog
		Workload:       campaign.WorkloadSpec{Name: "victim:matmul", Source: victim},
		LogMode:        campaign.LogNormal,
	}
}

// runProcOnce executes one proc campaign on a fresh in-memory store.
func runProcOnce(victim string, n, boards int, seed int64) (float64, *core.Summary, error) {
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return 0, nil, err
	}
	info, ok := core.LookupTarget(proctarget.Kind)
	if !ok {
		return 0, nil, fmt.Errorf("proc target not registered")
	}
	cfg := core.TargetConfig{Params: map[string]string{"victim": victim}}
	tsd, err := info.SystemData("proc-board", cfg)
	if err != nil {
		return 0, nil, err
	}
	if err := st.PutTargetSystem(tsd); err != nil {
		return 0, nil, err
	}
	camp := procCampaign(victim, n, seed)
	if err := st.PutCampaign(camp); err != nil {
		return 0, nil, err
	}
	factory := func() core.TargetSystem {
		ts, err := info.New(cfg)
		if err != nil {
			panic(err)
		}
		return ts
	}
	sink := campaign.NewBatchingSink(st, 0)
	r, err := core.NewRunner(factory(), core.Algorithms()[info.Algorithm], camp, tsd,
		core.WithSink(sink), core.WithBoards(boards, factory))
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	sum, err := r.Run(context.Background())
	if err != nil {
		return 0, nil, err
	}
	if err := sink.Close(); err != nil {
		return 0, nil, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, sum, nil
}

func runProc(n, reps, boards int, seed int64, out string) error {
	victim, cleanup, err := buildVictim()
	if err != nil {
		return err
	}
	defer cleanup()
	if err := proctarget.Probe(victim); err != nil {
		return fmt.Errorf("ptrace unavailable here, proc bench cannot run: %w", err)
	}
	res := procResult{
		Benchmark:   "BenchmarkCampaignProc",
		Date:        time.Now().UTC().Format("2006-01-02"),
		CPUs:        runtime.NumCPU(),
		Experiments: n,
		Boards:      boards,
		Reps:        reps,
	}
	// Untimed warmup: first spawn pays one-off costs (victim page cache,
	// reference-stdout memoisation).
	if _, _, err := runProcOnce(victim, min(n, 20), boards, seed); err != nil {
		return err
	}
	for rep := 0; rep < reps; rep++ {
		wall, sum, err := runProcOnce(victim, n, boards, seed)
		if err != nil {
			return err
		}
		res.WallMS = append(res.WallMS, wall)
		if rep == 0 {
			res.PlanHash = sum.PlanHash
			res.PlanIdentical = true
			res.OutcomeClasses = make(map[string]int)
			for st, c := range sum.ByStatus {
				res.OutcomeClasses[string(st)] = c
			}
		} else if sum.PlanHash != res.PlanHash {
			res.PlanIdentical = false
		}
	}
	// Throughput from the median wall time.
	sorted := append([]float64(nil), res.WallMS...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	median := sorted[len(sorted)/2]
	if median > 0 {
		res.ExperimentsPerSecond = float64(n) / (median / 1000)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("proc: %d experiments, median %.1fms (%.1f exp/s), outcomes %v, plan identical: %v (%s)\n",
		n, median, res.ExperimentsPerSecond, res.OutcomeClasses, res.PlanIdentical, out)
	return os.WriteFile(out, blob, 0o644)
}
