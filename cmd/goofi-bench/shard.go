package main

// The shard mode: one campaign through the daemon's sharded path
// (coordinator + in-process shard workers over the Direct transport)
// versus the same campaign through the same daemon's solo path, with the
// same total board budget. The results are byte-identical by
// construction (the conformance suite pins that); this mode prices only
// the partition/lease/merge machinery, because everything else — HTTP
// submit, WAL-backed store, analysis — is identical between the two
// legs. Emulation is CPU-bound, so the wall-clock speedup is capped by
// the host's core count (cpus in the blob): on one core the sharded run
// can at best tie the solo run, and overhead_ratio — median sharded wall
// over median solo wall — is the protocol's round-trip cost.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"goofi/internal/server"
)

type shardResult struct {
	Benchmark       string    `json:"benchmark"`
	Date            string    `json:"date"`
	CPUs            int       `json:"cpus"`
	Experiments     int       `json:"experiments"`
	Shards          int       `json:"shards"`
	BoardsPerShard  int       `json:"boards_per_shard"`
	Reps            int       `json:"reps"`
	ShardedWallMS   []float64 `json:"sharded_wall_ms"`
	SoloWallMS      []float64 `json:"solo_wall_ms"`
	Speedup         float64   `json:"wall_clock_speedup"`
	OverheadRatio   float64   `json:"overhead_ratio"`
	SpeedupExpected bool      `json:"speedup_expected"`
}

// shardRep runs one repetition of the campaign through a fresh daemon
// and returns the wall time from submit to done. shards == 0 takes the
// daemon's solo path with submitBoards boards in one runner; shards > 0
// takes the sharded path with submitBoards boards per shard. The daemon
// capacity is sized so neither leg queues on admission.
func shardRep(n, shards, submitBoards int, seed int64) (float64, error) {
	capacity := submitBoards
	if shards > 0 {
		capacity = shards * submitBoards
	}
	dir, err := os.MkdirTemp("", "goofi-bench-shard")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{
		DataDir:       dir,
		Boards:        capacity,
		MaxConcurrent: 1,
	})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	start := time.Now()
	req := server.SubmitRequest{
		Tenant:   "bench",
		Campaign: pidCampaign("bench-shard", n, seed),
		Boards:   submitBoards,
		Shards:   shards,
	}
	blob, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: %s", resp.Status)
	}
	url := base + "/api/v1/campaigns/bench/bench-shard"
	for {
		resp, err := http.Get(url)
		if err != nil {
			return 0, err
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if st.State == server.StateDone {
			break
		}
		if st.State == server.StateFailed || st.State == server.StateCancelled {
			return 0, fmt.Errorf("campaign ended %s: %s", st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

func runShard(n, reps, boards int, seed int64, out string) error {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	if shards > 4 {
		shards = 4
	}
	res := shardResult{
		Benchmark:      "BenchmarkCampaignPID/shard",
		Date:           time.Now().UTC().Format("2006-01-02"),
		CPUs:           runtime.NumCPU(),
		Experiments:    n,
		Shards:         shards,
		BoardsPerShard: boards,
		Reps:           reps,
		// On one core the shard workers time-slice a single CPU, so the
		// best case is a tie and the acceptance bar is the overhead
		// ratio, not a speedup.
		SpeedupExpected: runtime.NumCPU() > 1,
	}
	// The solo leg runs the same total board count in a single runner,
	// so the two legs differ only in the shard protocol.
	soloBoards := shards * boards
	// Untimed warmup of both paths.
	if _, err := shardRep(n, shards, boards, seed); err != nil {
		return err
	}
	if _, err := shardRep(n, 0, soloBoards, seed); err != nil {
		return err
	}
	for rep := 0; rep < reps; rep++ {
		wall, err := shardRep(n, shards, boards, seed)
		if err != nil {
			return err
		}
		res.ShardedWallMS = append(res.ShardedWallMS, wall)
		solo, err := shardRep(n, 0, soloBoards, seed)
		if err != nil {
			return err
		}
		res.SoloWallMS = append(res.SoloWallMS, solo)
	}
	res.Speedup = medianF(res.SoloWallMS) / medianF(res.ShardedWallMS)
	res.OverheadRatio = medianF(res.ShardedWallMS) / medianF(res.SoloWallMS)
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("sharded: %.1fms across %d shards; solo: %.1fms; speedup %.2fx, overhead %.2fx on %d cpu(s) (%s)\n",
		medianF(res.ShardedWallMS), shards, medianF(res.SoloWallMS),
		res.Speedup, res.OverheadRatio, res.CPUs, out)
	return os.WriteFile(out, blob, 0o644)
}
