package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/workload"
)

// The forward mode (PR 8) crosses the two execution optimisations on the
// E1 PID campaign: checkpoint placement {interval, optimal} × thor
// execution {fastpath, steppath}. Placement changes how many cycles are
// re-emulated between a restore point and its injection; the fast path
// changes how much wall clock each emulated cycle costs. Records are
// byte-identical across all four cells (pinned by the differential
// suites), so the cells differ only in the two measured axes.

// forwardSample is one campaign execution under a placement/execution
// configuration.
type forwardSample struct {
	WallMS         float64 `json:"wall_ms"`
	CyclesEmulated uint64  `json:"cycles_emulated"`
	CyclesSaved    uint64  `json:"cycles_saved"`
	Forwarded      int     `json:"forwarded"`
	PredictedDelta uint64  `json:"predicted_delta_cycles"`
	AchievedDelta  uint64  `json:"achieved_delta_cycles"`
}

// forwardResult is the BENCH_PR8 blob. The top-level cycle counts are
// deterministic (fixed seed, explicit snapshot cost) and asserted by
// CI: optimal placement must never emulate more than interval.
type forwardResult struct {
	Benchmark   string                     `json:"benchmark"`
	Date        string                     `json:"date"`
	Experiments int                        `json:"experiments"`
	Boards      int                        `json:"boards"`
	Reps        int                        `json:"reps"`
	Configs     map[string][]forwardSample `json:"configs"`
	// CyclesEmulatedInterval/Optimal are the (deterministic) emulated
	// cycle counts of the two placements, fast path on.
	CyclesEmulatedInterval uint64 `json:"cycles_emulated_interval"`
	CyclesEmulatedOptimal  uint64 `json:"cycles_emulated_optimal"`
	// AchievedVsOptimal is the optimal plan's achieved re-emulation
	// delta over its model prediction — 1.0 means the campaign realised
	// exactly the planner's optimum (values slightly below 1.0 are
	// capture-overshoot in the campaign's favour).
	AchievedVsOptimal float64 `json:"achieved_vs_optimal"`
	// FastpathWallSpeedup is median steppath wall over median fastpath
	// wall for the full interval-placement campaign.
	FastpathWallSpeedup float64 `json:"fastpath_wall_speedup"`
	// ThorLoopSpeedup is the pure-emulation microbenchmark: a busy loop
	// executed with CPU.Run vs CPU.RunFast, isolating the fast path from
	// scan-chain and logging overhead.
	ThorLoopSpeedup float64 `json:"thor_loop_speedup"`
	// ReferenceWallSpeedup is Run vs RunFast on the actual reference
	// workload instruction stream: the sort16 batch program executed to
	// completion on bare CPUs (setup untimed), the closest measurable
	// analogue of "the reference run's emulation wall clock".
	ReferenceWallSpeedup float64 `json:"reference_wall_speedup"`
}

// forwardConfigs are the four cells of the comparison matrix.
var forwardConfigs = []struct {
	name      string
	placement string
	fastpath  bool
}{
	{"interval/fastpath", core.PlacementInterval, true},
	{"interval/steppath", core.PlacementInterval, false},
	{"optimal/fastpath", core.PlacementOptimal, true},
	{"optimal/steppath", core.PlacementOptimal, false},
}

// runForwardOnce executes the PID campaign under one cell of the matrix.
func runForwardOnce(n int, boards int, seed int64, placement string, fastpath bool) (forwardSample, error) {
	camp := pidCampaign("bench-placement", n, seed)
	var scifiOpts []scifi.Option
	if !fastpath {
		scifiOpts = append(scifiOpts, scifi.NoFastPath())
	}
	factory := func() core.TargetSystem { return scifi.New(thor.DefaultConfig(), scifiOpts...) }
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return forwardSample{}, err
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		return forwardSample{}, err
	}
	if err := st.PutCampaign(camp); err != nil {
		return forwardSample{}, err
	}
	sink := campaign.NewBatchingSink(st, 0)
	opts := []core.RunnerOption{
		core.WithSink(sink),
		core.WithBoards(boards, factory),
		// An explicit snapshot cost keeps the optimal plan — and
		// therefore every cycle count in the blob — deterministic
		// across hosts.
		core.WithForwarding(core.ForwardConfig{
			Placement:          placement,
			SnapshotCostCycles: core.DefaultSnapshotCostCycles,
		}),
	}
	r, err := core.NewRunner(factory(), core.SCIFI, camp, tsd, opts...)
	if err != nil {
		return forwardSample{}, err
	}
	start := time.Now()
	sum, err := r.Run(context.Background())
	wall := time.Since(start) // the two axes affect only the run, not analysis
	if err != nil {
		return forwardSample{}, err
	}
	if err := sink.Close(); err != nil {
		return forwardSample{}, err
	}
	if _, err := analysis.AnalyzeAndStore(st, camp.Name); err != nil {
		return forwardSample{}, err
	}
	return forwardSample{
		WallMS:         float64(wall.Microseconds()) / 1000,
		CyclesEmulated: sum.CyclesEmulated,
		CyclesSaved:    sum.CyclesSaved,
		Forwarded:      sum.Forwarded,
		PredictedDelta: sum.ForwardPredictedDelta,
		AchievedDelta:  sum.ForwardDeltaCycles,
	}, nil
}

// thorLoopSrc is the pure-emulation microbenchmark workload: a
// non-overflowing busy loop with a watchdog kick, the same shape the
// fast-path benchmarks in internal/thor use.
const thorLoopSrc = `
	ldi r2, 1
loop:
	addi r2, r2, 1
	mul r3, r2, r2
	xor r4, r3, r2
	and r5, r4, r3
	kick
	cmpi r2, 0
	bne loop
	halt
`

// thorLoopSpeedup measures Run vs RunFast on the busy loop: reps
// repetitions of a 400k-cycle run each, median over median.
func thorLoopSpeedup(reps int) (float64, error) {
	prog, err := asm.Assemble(thorLoopSrc)
	if err != nil {
		return 0, err
	}
	const cycles = 400_000
	measure := func(fast bool) (float64, error) {
		times := make([]float64, 0, reps)
		for i := 0; i < reps+1; i++ {
			c := thor.New(thor.DefaultConfig())
			if err := c.LoadMemory(0, prog.Image); err != nil {
				return 0, err
			}
			start := time.Now()
			var st thor.Status
			if fast {
				st = c.RunFast(cycles)
			} else {
				st = c.Run(cycles)
			}
			if st != thor.StatusOutOfBudget {
				return 0, fmt.Errorf("thor loop stopped with %v", st)
			}
			if i > 0 { // first rep is untimed warmup
				times = append(times, float64(time.Since(start).Nanoseconds()))
			}
		}
		med := medianFloat(times)
		return med, nil
	}
	slow, err := measure(false)
	if err != nil {
		return 0, err
	}
	fast, err := measure(true)
	if err != nil {
		return 0, err
	}
	return slow / fast, nil
}

// referenceWallSpeedup measures the fast path on the reference
// workload's own instruction stream: sort16 run to completion. CPUs are
// built and loaded outside the timed region so only execution is
// priced; the batch is large enough (100 runs per sample) to time
// reliably.
func referenceWallSpeedup(reps int) (float64, error) {
	prog, err := asm.Assemble(workload.Sort().Source)
	if err != nil {
		return 0, err
	}
	const batch = 100
	const budget = 1_000_000
	measure := func(fast bool) (float64, error) {
		times := make([]float64, 0, reps)
		for rep := 0; rep < reps+1; rep++ {
			cpus := make([]*thor.CPU, batch)
			for i := range cpus {
				c := thor.New(thor.DefaultConfig())
				if err := c.LoadMemory(0, prog.Image); err != nil {
					return 0, err
				}
				cpus[i] = c
			}
			start := time.Now()
			for _, c := range cpus {
				var st thor.Status
				if fast {
					st = c.RunFast(budget)
				} else {
					st = c.Run(budget)
				}
				if st != thor.StatusHalted && st != thor.StatusIterationEnd {
					return 0, fmt.Errorf("sort16 reference stopped with %v", st)
				}
			}
			if rep > 0 { // first rep is untimed warmup
				times = append(times, float64(time.Since(start).Nanoseconds()))
			}
		}
		return medianFloat(times), nil
	}
	slow, err := measure(false)
	if err != nil {
		return 0, err
	}
	fast, err := measure(true)
	if err != nil {
		return 0, err
	}
	return slow / fast, nil
}

func medianFloat(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}

func runForward(n, reps, boards int, seed int64, out string) error {
	res := forwardResult{
		Benchmark:   "BenchmarkCampaignPID/placement-x-fastpath",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Experiments: n,
		Boards:      boards,
		Reps:        reps,
		Configs:     map[string][]forwardSample{},
	}
	for _, cfg := range forwardConfigs { // untimed warmup per cell
		if _, err := runForwardOnce(n, boards, seed, cfg.placement, cfg.fastpath); err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
	}
	for rep := 0; rep < reps; rep++ {
		for _, cfg := range forwardConfigs {
			s, err := runForwardOnce(n, boards, seed, cfg.placement, cfg.fastpath)
			if err != nil {
				return fmt.Errorf("%s: %w", cfg.name, err)
			}
			res.Configs[cfg.name] = append(res.Configs[cfg.name], s)
		}
	}
	medOf := func(name string) forwardSample {
		ss := res.Configs[name]
		sorted := append([]forwardSample(nil), ss...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].WallMS < sorted[i].WallMS {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		return sorted[len(sorted)/2]
	}
	interval := medOf("interval/fastpath")
	optimal := medOf("optimal/fastpath")
	res.CyclesEmulatedInterval = interval.CyclesEmulated
	res.CyclesEmulatedOptimal = optimal.CyclesEmulated
	if optimal.PredictedDelta > 0 {
		res.AchievedVsOptimal = float64(optimal.AchievedDelta) / float64(optimal.PredictedDelta)
	}
	res.FastpathWallSpeedup = medOf("interval/steppath").WallMS / interval.WallMS
	loop, err := thorLoopSpeedup(reps + 2)
	if err != nil {
		return err
	}
	res.ThorLoopSpeedup = loop
	ref, err := referenceWallSpeedup(reps + 2)
	if err != nil {
		return err
	}
	res.ReferenceWallSpeedup = ref
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	fmt.Printf("placement: interval %d cycles emulated, optimal %d (achieved/optimal %.3f); fastpath wall %.2fx, thor loop %.2fx, reference %.2fx (%s)\n",
		res.CyclesEmulatedInterval, res.CyclesEmulatedOptimal, res.AchievedVsOptimal,
		res.FastpathWallSpeedup, res.ThorLoopSpeedup, res.ReferenceWallSpeedup, out)
	return os.WriteFile(out, blob, 0o644)
}
