// Command goofi-asm assembles THOR-S assembly source into a memory image
// and disassembles images, for preparing custom workloads.
//
//	goofi-asm -o prog.bin prog.s          assemble
//	goofi-asm -symbols prog.s             assemble and print symbols
//	goofi-asm -d prog.bin                 disassemble
//	goofi-asm -builtin sort16             print a built-in workload source
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"goofi/internal/asm"
	"goofi/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "goofi-asm:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output image file (assemble mode)")
	disasm := flag.Bool("d", false, "disassemble an image instead of assembling")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	listing := flag.Bool("listing", false, "print the disassembly listing after assembling")
	builtin := flag.String("builtin", "", "print a built-in workload's source and exit")
	flag.Parse()

	if *builtin != "" {
		spec, ok := workload.All()[*builtin]
		if !ok {
			return fmt.Errorf("unknown built-in workload %q", *builtin)
		}
		fmt.Print(spec.Source)
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one input file")
	}
	input := flag.Arg(0)
	data, err := os.ReadFile(input)
	if err != nil {
		return err
	}

	if *disasm {
		for _, line := range asm.Disassemble(data) {
			fmt.Println(line)
		}
		return nil
	}

	prog, err := asm.Assemble(string(data))
	if err != nil {
		return err
	}
	fmt.Printf("assembled %s: %d bytes\n", input, len(prog.Image))
	if *symbols {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return prog.Symbols[names[i]] < prog.Symbols[names[j]]
		})
		for _, n := range names {
			fmt.Printf("  %08x  %s\n", prog.Symbols[n], n)
		}
	}
	if *listing {
		for _, line := range asm.Disassemble(prog.Image) {
			fmt.Println(line)
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, prog.Image, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
