package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// invoke runs the assembler CLI with fresh flag state.
func invoke(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldCmd := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldCmd
	}()
	flag.CommandLine = flag.NewFlagSet("goofi-asm", flag.ContinueOnError)
	os.Args = append([]string{"goofi-asm"}, args...)
	return run()
}

func writeSource(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssembleToFile(t *testing.T) {
	src := writeSource(t, "ldi r1, 5\nhalt\n")
	out := filepath.Join(t.TempDir(), "prog.bin")
	if err := invoke(t, "-o", out, src); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 8 {
		t.Errorf("image size = %d, want 8", len(img))
	}
}

func TestSymbolsAndListing(t *testing.T) {
	src := writeSource(t, "start:\nldi r1, 5\nhalt\ndata:\n.word 7\n")
	if err := invoke(t, "-symbols", "-listing", src); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	src := writeSource(t, "ldi r1, 5\nhalt\n")
	out := filepath.Join(t.TempDir(), "prog.bin")
	if err := invoke(t, "-o", out, src); err != nil {
		t.Fatal(err)
	}
	if err := invoke(t, "-d", out); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinWorkload(t *testing.T) {
	if err := invoke(t, "-builtin", "sort16"); err != nil {
		t.Fatal(err)
	}
	if err := invoke(t, "-builtin", "nope"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestErrorCases(t *testing.T) {
	if err := invoke(t); err == nil {
		t.Error("no input file accepted")
	}
	if err := invoke(t, "/nonexistent/file.s"); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeSource(t, "frobnicate r1\n")
	if err := invoke(t, bad); err == nil {
		t.Error("bad source accepted")
	}
}
