// Command goofi-experiments regenerates the tables of EXPERIMENTS.md: one
// experiment per paper artifact (figures F1–F7 are covered by the test
// suite; the quantitative experiments E1–E8 are produced here). Run all:
//
//	go run ./cmd/goofi-experiments
//
// or a single experiment:
//
//	go run ./cmd/goofi-experiments -e E3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/swifi"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func main() {
	which := flag.String("e", "", "experiment to run (E1..E8); empty runs all")
	n := flag.Int("n", 200, "experiments per campaign")
	seed := flag.Int64("seed", 2003, "base seed")
	flag.Parse()
	all := []struct {
		name string
		fn   func(n int, seed int64) error
	}{
		{"E1", e1}, {"E2", e2}, {"E3", e3}, {"E4", e4}, {"E5", e5},
		{"E6", e6}, {"E7", e7}, {"E8", e8}, {"E9", e9}, {"E10", e10},
	}
	for _, e := range all {
		if *which != "" && !strings.EqualFold(*which, e.name) {
			continue
		}
		fmt.Printf("==== %s ====\n", e.name)
		if err := e.fn(*n, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "goofi-experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// newStore creates a store with the SCIFI target registered.
func newStore() (*campaign.Store, *campaign.TargetSystemData, error) {
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return nil, nil, err
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		return nil, nil, err
	}
	return st, tsd, nil
}

// execute stores and runs a campaign on a target, returning the analysis.
func execute(st *campaign.Store, tsd *campaign.TargetSystemData,
	tgt core.TargetSystem, alg core.Algorithm, camp *campaign.Campaign,
	opts ...core.RunnerOption) (*analysis.Report, *core.Summary, error) {
	if err := st.PutCampaign(camp); err != nil {
		return nil, nil, err
	}
	opts = append(opts, core.WithSink(st))
	r, err := core.NewRunner(tgt, alg, camp, tsd, opts...)
	if err != nil {
		return nil, nil, err
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	rep, err := analysis.AnalyzeAndStore(st, camp.Name)
	if err != nil {
		return nil, nil, err
	}
	return rep, sum, nil
}

func pidCampaign(name string, n int, seed int64, locations []string) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      locations,
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{200, 8000},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 400_000, MaxIterations: 80},
		Workload:       workload.PID(),
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
}

func sortCampaign(name string, n int, seed int64, locations []string) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      locations,
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func e1(n int, seed int64) error {
	fmt.Println("E1: SCIFI transient bit-flip campaign on the PID control application")
	fmt.Println("    (paper §3.4 outcome taxonomy; fault space = CPU registers + caches)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	camp := pidCampaign("e1", n, seed, []string{"cpu", "icache", "dcache"})
	camp.Workload.OutputTail = 10
	camp.Workload.OutputTolerance = 512
	camp.Workload.ResultTolerance = 512
	rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

func e2(n int, seed int64) error {
	fmt.Println("E2: normal vs detail logging mode (paper §3.3)")
	if n > 40 {
		n = 40 // detail mode logs per instruction; keep it bounded
	}
	run := func(mode campaign.LogMode) (*analysis.Report, time.Duration, int, error) {
		st, tsd, err := newStore()
		if err != nil {
			return nil, 0, 0, err
		}
		camp := sortCampaign("e2-"+string(mode), n, seed, []string{"cpu"})
		camp.Termination.TimeoutCycles = 30_000
		camp.LogMode = mode
		start := time.Now()
		rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
		if err != nil {
			return nil, 0, 0, err
		}
		elapsed := time.Since(start)
		traceRows := 0
		if mode == campaign.LogDetail {
			tr, err := st.Trace(campaign.ExperimentName(camp.Name, 0))
			if err != nil {
				return nil, 0, 0, err
			}
			traceRows = len(tr)
		}
		return rep, elapsed, traceRows, nil
	}
	normal, tNormal, _, err := run(campaign.LogNormal)
	if err != nil {
		return err
	}
	detail, tDetail, rows, err := run(campaign.LogDetail)
	if err != nil {
		return err
	}
	fmt.Printf("  normal mode: %8.1f ms for %d experiments\n", float64(tNormal.Microseconds())/1000, n)
	fmt.Printf("  detail mode: %8.1f ms for %d experiments (%d trace rows for exp 0)\n",
		float64(tDetail.Microseconds())/1000, n, rows)
	fmt.Printf("  time overhead factor: %.1fx\n", float64(tDetail)/float64(tNormal))
	same := true
	for _, c := range analysis.AllClasses() {
		if normal.Counts[c] != detail.Counts[c] {
			same = false
		}
	}
	fmt.Printf("  identical classification in both modes: %v\n", same)
	return nil
}

func e3(n int, seed int64) error {
	fmt.Println("E3: SCIFI vs pre-runtime SWIFI on the sort workload ([10] shape)")
	fmt.Println("    SCIFI reaches registers and cache state; SWIFI reaches only the memory image")

	// SCIFI campaign over CPU + caches.
	stS, tsdS, err := newStore()
	if err != nil {
		return err
	}
	scifiCamp := sortCampaign("e3-scifi", n, seed, []string{"cpu", "icache", "dcache"})
	scifiRep, _, err := execute(stS, tsdS, scifi.New(thor.DefaultConfig()), core.SCIFI, scifiCamp)
	if err != nil {
		return err
	}

	// SWIFI campaign over the memory image.
	stW, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return err
	}
	imgSize, err := swifi.ImageSize(workload.Sort().Source)
	if err != nil {
		return err
	}
	tsdW := swifi.TargetSystemData("thor-swifi", imgSize)
	if err := stW.PutTargetSystem(tsdW); err != nil {
		return err
	}
	swifiCamp := sortCampaign("e3-swifi", n, seed, []string{"mem"})
	swifiCamp.TargetName = "thor-swifi"
	swifiCamp.ChainName = swifi.MemoryChainName
	swifiCamp.RandomWindow = [2]uint64{} // pre-runtime: no injection time
	swifiCamp.Trigger = trigger.Spec{Kind: "cycle", Cycle: 0}
	swifiRep, _, err := execute(stW, tsdW, swifi.New(thor.DefaultConfig(), swifi.PreRuntime),
		core.PreRuntimeSWIFI, swifiCamp)
	if err != nil {
		return err
	}

	fmt.Printf("  %-14s %10s %10s\n", "class", "SCIFI", "SWIFI")
	for _, c := range analysis.AllClasses() {
		fmt.Printf("  %-14s %5d %3.0f%% %5d %3.0f%%\n", string(c),
			scifiRep.Counts[c], 100*scifiRep.Fraction(c),
			swifiRep.Counts[c], 100*swifiRep.Fraction(c))
	}
	fmt.Printf("  coverage       %10s %10s\n",
		fmt.Sprintf("%.2f", scifiRep.Coverage.P), fmt.Sprintf("%.2f", swifiRep.Coverage.P))
	mechs := func(r *analysis.Report) string {
		var ms []string
		for m := range r.Mechanisms {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		return strings.Join(ms, ", ")
	}
	fmt.Printf("  SCIFI mechanisms: %s\n", mechs(scifiRep))
	fmt.Printf("  SWIFI mechanisms: %s\n", mechs(swifiRep))
	return nil
}

func e4(n int, seed int64) error {
	fmt.Println("E4: executable assertions + best-effort recovery ([12] shape)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	run := func(name string, wl campaign.WorkloadSpec) (*analysis.Report, error) {
		camp := pidCampaign(name, n, seed, []string{"cpu"})
		wl.OutputTail = 10
		wl.OutputTolerance = 512
		wl.ResultTolerance = 512
		camp.Workload = wl
		camp.EnvSim = &campaign.EnvSimSpec{Name: "engine"}
		camp.Termination.MaxIterations = 100
		rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
		return rep, err
	}
	bare, err := run("e4-bare", workload.PID())
	if err != nil {
		return err
	}
	hardened, err := run("e4-hardened", workload.PIDAssert())
	if err != nil {
		return err
	}
	fmt.Printf("  %-22s %8s %8s\n", "", "bare", "hardened")
	fmt.Printf("  %-22s %8d %8d\n", "critical (escaped)",
		bare.Counts[analysis.ClassEscaped], hardened.Counts[analysis.ClassEscaped])
	fmt.Printf("  %-22s %8d %8d\n", "detected",
		bare.Counts[analysis.ClassDetected], hardened.Counts[analysis.ClassDetected])
	fmt.Printf("  %-22s %8d %8d\n", "recoveries", bare.Recovered, hardened.Recovered)
	if hardened.Counts[analysis.ClassEscaped] > 0 {
		fmt.Printf("  critical-failure reduction factor: %.2fx\n",
			float64(bare.Counts[analysis.ClassEscaped])/float64(hardened.Counts[analysis.ClassEscaped]))
	}
	return nil
}

func e5(n int, seed int64) error {
	fmt.Println("E5: pre-injection analysis efficiency (paper §4 extension)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	regs := make([]string, 0, thor.NumRegs)
	for i := 0; i < thor.NumRegs; i++ {
		regs = append(regs, fmt.Sprintf("cpu.r%d", i))
	}
	plainCamp := sortCampaign("e5-plain", n, seed, regs)
	plainRep, plainSum, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, plainCamp)
	if err != nil {
		return err
	}
	filtCamp := sortCampaign("e5-filtered", n, seed, regs)
	liveness, err := preinject.AnalyzeWorkload(thor.DefaultConfig(), filtCamp)
	if err != nil {
		return err
	}
	filtRep, filtSum, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, filtCamp,
		core.WithInjectionFilter(liveness.Filter()))
	if err != nil {
		return err
	}
	fmt.Printf("  live (register, time) fraction: %.0f%%\n", 100*liveness.LiveFraction(50))
	fmt.Printf("  %-22s %8s %10s\n", "", "plain", "filtered")
	fmt.Printf("  %-22s %8d %10d\n", "skipped draws", plainSum.Skipped, filtSum.Skipped)
	fmt.Printf("  %-22s %8d %10d\n", "overwritten",
		plainRep.Counts[analysis.ClassOverwritten], filtRep.Counts[analysis.ClassOverwritten])
	fmt.Printf("  %-22s %8.3f %10.3f\n", "effective rate",
		plainRep.EffectiveRate.P, filtRep.EffectiveRate.P)
	if plainRep.EffectiveRate.P > 0 {
		fmt.Printf("  effective-yield improvement: %.1fx\n",
			filtRep.EffectiveRate.P/plainRep.EffectiveRate.P)
	}
	return nil
}

func e6(n int, seed int64) error {
	fmt.Println("E6: fault model comparison (paper §4: intermittent and permanent models)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	models := []faultmodel.Spec{
		{Kind: faultmodel.Transient},
		{Kind: faultmodel.Intermittent, ActiveProb: 0.3},
		{Kind: faultmodel.StuckAt0},
		{Kind: faultmodel.StuckAt1},
	}
	var labels []string
	var reps []*analysis.Report
	for _, m := range models {
		camp := sortCampaign("e6-"+string(m.Kind), n, seed, []string{"cpu"})
		camp.FaultModel = m
		rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
		if err != nil {
			return err
		}
		labels = append(labels, string(m.Kind))
		reps = append(reps, rep)
	}
	fmt.Printf("  %-14s", "class")
	for _, l := range labels {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	for _, c := range analysis.AllClasses() {
		fmt.Printf("  %-14s", string(c))
		for _, r := range reps {
			fmt.Printf(" %6d (%4.1f%%)", r.Counts[c], 100*r.Fraction(c))
		}
		fmt.Println()
	}
	fmt.Printf("  %-14s", "effective")
	for _, r := range reps {
		fmt.Printf(" %13.3f ", r.EffectiveRate.P)
	}
	fmt.Println()
	return nil
}

func e7(n int, seed int64) error {
	fmt.Println("E7: database round trip and logging throughput (portability, paper §1)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	camp := sortCampaign("e7", minInt(n, 50), seed, []string{"cpu"})
	rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
	if err != nil {
		return err
	}
	// Persist, reload, re-analyze: identical report.
	path := os.TempDir() + "/goofi-e7.db"
	defer os.Remove(path)
	if err := st.DB().SaveFile(path); err != nil {
		return err
	}
	db2 := sqldb.Open()
	if err := db2.LoadFile(path); err != nil {
		return err
	}
	st2, err := campaign.NewStore(db2)
	if err != nil {
		return err
	}
	rep2, err := analysis.AnalyzeAndStore(st2, "e7")
	if err != nil {
		return err
	}
	same := true
	for _, c := range analysis.AllClasses() {
		if rep.Counts[c] != rep2.Counts[c] {
			same = false
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("  experiments logged:  %d (+reference)\n", rep.Total)
	fmt.Printf("  database file size:  %d bytes\n", fi.Size())
	fmt.Printf("  reload + re-analysis identical: %v\n", same)

	// Raw LoggedSystemState insert throughput.
	db3 := sqldb.Open()
	st3, err := campaign.NewStore(db3)
	if err != nil {
		return err
	}
	if err := st3.PutTargetSystem(tsd); err != nil {
		return err
	}
	if err := st3.PutCampaign(camp); err != nil {
		return err
	}
	const rows = 2000
	start := time.Now()
	for i := 0; i < rows; i++ {
		rec := &campaign.ExperimentRecord{
			Name:     fmt.Sprintf("e7/bench%06d", i),
			Campaign: "e7",
			Step:     -1,
			Data:     campaign.ExperimentData{Seq: i, Outcome: campaign.Outcome{Status: campaign.OutcomeCompleted}},
			State:    campaign.StateVector{Memory: map[string][]byte{"x": {1, 2, 3, 4}}},
		}
		if err := st3.LogExperiment(rec); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("  LoggedSystemState insert rate: %.0f rows/s\n",
		rows/elapsed.Seconds())
	return nil
}

func e8(n int, seed int64) error {
	fmt.Println("E8: fault triggers select distinct injection points (paper §4 extension)")
	st, tsd, err := newStore()
	if err != nil {
		return err
	}
	prog := workload.Sort()
	// The data-access trigger watches the first store to the checksum
	// word; resolve its address by assembling the workload host-side.
	asmProg, err := asmWorkload(prog.Source)
	if err != nil {
		return err
	}
	specs := []trigger.Spec{
		{Kind: "cycle", Cycle: 1500},
		{Kind: "instret", Count: 300},
		{Kind: "branch", Occurrence: 25},
		{Kind: "data-access", Addr: asmProg["checksum"], Write: true},
		{Kind: "rtc", Period: 640, Occurrence: 2},
	}
	if n > 60 {
		n = 60
	}
	fmt.Printf("  %-26s %10s %10s %10s\n", "trigger", "min cycle", "mean", "max")
	for _, spec := range specs {
		camp := sortCampaign("e8-"+spec.Kind, n, seed, []string{"cpu"})
		camp.Trigger = spec
		camp.RandomWindow = [2]uint64{}
		camp.Workload = prog
		_, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
		if err != nil {
			return err
		}
		recs, err := st.Experiments(camp.Name)
		if err != nil {
			return err
		}
		var minC, maxC, sum uint64
		minC = ^uint64(0)
		cnt := 0
		for _, rec := range recs {
			if rec.IsReference() || !rec.Data.Injected {
				continue
			}
			c := rec.Data.InjectionCycle
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
			sum += c
			cnt++
		}
		if cnt == 0 {
			fmt.Printf("  %-26s (never fired)\n", spec.Kind)
			continue
		}
		fmt.Printf("  %-26s %10d %10d %10d\n",
			fmt.Sprintf("%s", triggerLabel(spec)), minC, sum/uint64(cnt), maxC)
	}
	return nil
}

func e9(n int, seed int64) error {
	fmt.Println("E9: error detection mechanism ablation (design-choice sensitivity)")
	fmt.Println("    same register campaign against THOR-S variants with EDMs removed")
	type variant struct {
		name string
		cfg  thor.Config
	}
	full := thor.DefaultConfig()
	noOvf := full
	noOvf.TrapOnOverflow = false
	noWD := full
	noWD.WatchdogLimit = 0
	noCache := full
	noCache.DisableCaches = true
	variants := []variant{
		{"full", full},
		{"no-overflow-trap", noOvf},
		{"no-watchdog", noWD},
		{"no-caches(parity)", noCache},
	}
	fmt.Printf("  %-20s %9s %9s %9s %10s  %s\n",
		"variant", "detected", "escaped", "latent", "coverage", "mechanisms")
	for _, v := range variants {
		st, tsd, err := newStore()
		if err != nil {
			return err
		}
		camp := sortCampaign("e9-"+v.name, n, seed, []string{"cpu", "icache", "dcache"})
		if v.cfg.DisableCaches {
			// Without caches every access pays the miss penalty, so the
			// run is ~8x longer; scale the injection window to cover the
			// same fraction of the execution.
			camp.RandomWindow = [2]uint64{80, 12800}
		}
		rep, _, err := execute(st, tsd, scifi.New(v.cfg), core.SCIFI, camp)
		if err != nil {
			return err
		}
		var ms []string
		for m := range rep.Mechanisms {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		fmt.Printf("  %-20s %9d %9d %9d %10.3f  %s\n", v.name,
			rep.Counts[analysis.ClassDetected], rep.Counts[analysis.ClassEscaped],
			rep.Counts[analysis.ClassLatent], rep.Coverage.P, strings.Join(ms, ","))
	}

	// Part 2: register-only faults in the arithmetic-heavy PID loop,
	// where the overflow trap and the watchdog are the relevant EDMs.
	fmt.Println("  -- register faults, PID control loop --")
	fmt.Printf("  %-20s %9s %9s %10s  %s\n", "variant", "detected", "escaped", "coverage", "mechanisms")
	for _, v := range variants {
		st, tsd, err := newStore()
		if err != nil {
			return err
		}
		camp := pidCampaign("e9b-"+v.name, n, seed, []string{"cpu"})
		if v.cfg.DisableCaches {
			camp.RandomWindow = [2]uint64{1600, 64000}
			camp.Termination.TimeoutCycles = 3_200_000
		}
		rep, _, err := execute(st, tsd, scifi.New(v.cfg), core.SCIFI, camp)
		if err != nil {
			return err
		}
		var ms []string
		for m := range rep.Mechanisms {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		fmt.Printf("  %-20s %9d %9d %10.3f  %s\n", v.name,
			rep.Counts[analysis.ClassDetected], rep.Counts[analysis.ClassEscaped],
			rep.Coverage.P, strings.Join(ms, ","))
	}
	return nil
}

func e10(n int, seed int64) error {
	fmt.Println("E10: software triple modular redundancy (time redundancy + majority vote)")
	fmt.Println("     register bit-flips into a plain vs a TMR-hardened checksum")
	run := func(name string, wl campaign.WorkloadSpec, window [2]uint64) (*analysis.Report, error) {
		st, tsd, err := newStore()
		if err != nil {
			return nil, err
		}
		camp := &campaign.Campaign{
			Name:           name,
			TargetName:     "thor-board",
			ChainName:      "internal",
			Locations:      []string{"cpu.r1", "cpu.r2", "cpu.r3", "cpu.r4"}, // the compute registers
			FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
			Trigger:        trigger.Spec{Kind: "cycle"},
			RandomWindow:   window,
			NumExperiments: n,
			Seed:           seed,
			Termination:    campaign.Termination{TimeoutCycles: 50_000},
			Workload:       wl,
			LogMode:        campaign.LogNormal,
		}
		rep, _, err := execute(st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp)
		return rep, err
	}
	// Inject across each variant's whole computation (the TMR run is ~3x
	// longer, so its window scales to keep the per-cycle fault rate).
	plain, err := run("e10-plain", workload.Checksum(), [2]uint64{10, 380})
	if err != nil {
		return err
	}
	tmr, err := run("e10-tmr", workload.ChecksumTMR(), [2]uint64{10, 1080})
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s %8s %8s\n", "", "plain", "TMR")
	row := func(label string, a, b int) { fmt.Printf("  %-26s %8d %8d\n", label, a, b) }
	row("escaped (wrong result)", plain.Counts[analysis.ClassEscaped], tmr.Counts[analysis.ClassEscaped])
	row("detected", plain.Counts[analysis.ClassDetected], tmr.Counts[analysis.ClassDetected])
	row("latent", plain.Counts[analysis.ClassLatent], tmr.Counts[analysis.ClassLatent])
	row("overwritten", plain.Counts[analysis.ClassOverwritten], tmr.Counts[analysis.ClassOverwritten])
	if tmr.Counts[analysis.ClassEscaped] > 0 {
		fmt.Printf("  escape reduction factor: %.1fx\n",
			float64(plain.Counts[analysis.ClassEscaped])/float64(tmr.Counts[analysis.ClassEscaped]))
	} else if plain.Counts[analysis.ClassEscaped] > 0 {
		fmt.Println("  escape reduction factor: inf (TMR masked every wrong result)")
	}
	return nil
}

func asmWorkload(source string) (map[string]uint32, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	return prog.Symbols, nil
}

func triggerLabel(s trigger.Spec) string {
	t, err := s.Build()
	if err != nil {
		return s.Kind
	}
	return t.Name()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
