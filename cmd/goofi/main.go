// Command goofi is the GOOFI fault injection tool's command-line surface,
// replacing the paper's Java/Swing GUI. The four phases of §3 map to
// subcommands:
//
//	goofi configure  — configuration phase (Fig 5): store a target
//	                   system's scan-chain maps
//	goofi setup      — set-up phase (Fig 6): define or merge campaigns
//	goofi run        — fault injection phase (Fig 7): execute a campaign
//	                   with live progress
//	goofi resume     — continue an interrupted campaign from its last
//	                   durable checkpoint
//	goofi analyze    — analysis phase (§3.4): classify outcomes and run
//	                   the generated SQL analysis
//	goofi list       — show stored targets and campaigns
//	goofi schema     — print the database schema (Fig 4)
//
// All state lives in a GOOFI database file (-db) plus its write-ahead
// log (-db path + ".wal"); a killed process recovers both on the next
// open.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/chaos"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"

	// Registered target systems. Blank imports run each package's
	// RegisterTarget init; the CLI reaches them only via the registry.
	_ "goofi/internal/pinlevel"
	_ "goofi/internal/proctarget"
	_ "goofi/internal/scifi"
	_ "goofi/internal/swifi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goofi:", err)
		os.Exit(1)
	}
}

func usage() string {
	return `usage: goofi <command> [flags]

commands:
  configure  store a target system configuration (Fig 5)
  setup      define a fault injection campaign (Fig 6)
  merge      merge campaigns into a new one
  run        execute a campaign (Fig 7)
  resume     continue an interrupted campaign from its checkpoint
  analyze    classify campaign results (paper §3.4)
  list       list stored targets and campaigns
  schema     print the GOOFI database schema (Fig 4)
  workloads  list built-in workloads
  targets    list registered target systems

daemon client (talks to a running goofid):
  submit       submit a campaign to a goofid daemon
  status       show a submitted campaign's state and progress
  results      fetch a submitted campaign's dependability report
  cancel       cancel a submitted campaign
  shard-worker lease and execute shard ranges of a sharded campaign
`
}

func run(args []string) error {
	if len(args) == 0 {
		fmt.Print(usage())
		return fmt.Errorf("no command given")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "configure":
		return cmdConfigure(rest)
	case "setup":
		return cmdSetup(rest)
	case "merge":
		return cmdMerge(rest)
	case "run":
		return cmdRun(rest)
	case "resume":
		return cmdResume(rest)
	case "analyze":
		return cmdAnalyze(rest)
	case "list":
		return cmdList(rest)
	case "schema":
		return cmdSchema(rest)
	case "workloads":
		return cmdWorkloads(rest)
	case "targets":
		return cmdTargets(rest)
	case "submit":
		return cmdSubmit(rest)
	case "status":
		return cmdStatus(rest)
	case "results":
		return cmdResults(rest)
	case "cancel":
		return cmdCancel(rest)
	case "shard-worker":
		return cmdShardWorker(rest)
	case "help", "-h", "--help":
		fmt.Print(usage())
		return nil
	default:
		fmt.Print(usage())
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// openStore opens (or creates) the GOOFI database at path with its
// write-ahead log. Crash recovery runs inside OpenAt: the snapshot is
// loaded and surviving log records are replayed on top.
func openStore(path string) (*campaign.Store, *sqldb.DB, error) {
	db, err := sqldb.OpenAt(path, sqldb.SyncBarrier)
	if err != nil {
		return nil, nil, err
	}
	st, err := campaign.NewStore(db)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	return st, db, nil
}

func cmdConfigure(args []string) error {
	fs := flag.NewFlagSet("configure", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	target := fs.String("target", "thor-board", "target system name")
	kind := fs.String("kind", "scifi", "target kind (see 'goofi targets')")
	imageBytes := fs.Int("image-bytes", 4096, "workload image size (swifi targets)")
	victim := fs.String("victim", "", "victim binary path (proc targets; adds the memory chain)")
	params := paramFlags{}
	fs.Var(params, "target-param", "target-specific key=value parameter (repeatable)")
	tree := fs.Bool("tree", false, "print the hierarchical location list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	if _, ok := params["image-bytes"]; !ok {
		params["image-bytes"] = strconv.Itoa(*imageBytes)
	}
	if *victim != "" {
		params["victim"] = *victim
	}
	info, ok := core.LookupTarget(*kind)
	if !ok {
		return fmt.Errorf("unknown target kind %q (see 'goofi targets')", *kind)
	}
	tsd, err := info.SystemData(*target, core.TargetConfig{Params: params})
	if err != nil {
		return err
	}
	if err := st.PutTargetSystem(tsd); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("configured target %q (%s) with %d chain(s)\n", *target, *kind, len(tsd.Chains))
	if *tree {
		for i := range tsd.Chains {
			fmt.Print(tsd.Chains[i].Tree())
		}
	}
	return nil
}

// campaignFlags groups the campaign-definition flags shared by `goofi
// setup` (writes the local database) and `goofi submit` (ships the
// definition to a goofid daemon). One flag set, one Campaign builder —
// the two paths cannot drift apart.
type campaignFlags struct {
	name, target, chain, locations, observe *string
	model                                   *string
	mult                                    *int
	activeProb                              *float64
	trigKind                                *string
	trigCycle, trigAddr                     *uint64
	trigOcc                                 *int
	window                                  *string
	experiments                             *int
	seed                                    *int64
	timeout                                 *uint64
	maxIter                                 *int
	wl, envName, logMode                    *string
	victim                                  *string
}

func newCampaignFlags(fs *flag.FlagSet) *campaignFlags {
	return &campaignFlags{
		name:        fs.String("campaign", "", "campaign name (required)"),
		target:      fs.String("target", "thor-board", "target system name"),
		chain:       fs.String("chain", "internal", "scan chain to inject into"),
		locations:   fs.String("locations", "cpu", "comma-separated location names/prefixes"),
		observe:     fs.String("observe", "", "comma-separated observed locations (default: all writable)"),
		model:       fs.String("model", "transient", "fault model: transient, stuck-at-0, stuck-at-1, intermittent"),
		mult:        fs.Int("multiplicity", 1, "bits per fault"),
		activeProb:  fs.Float64("active-prob", 0.5, "intermittent activation probability"),
		trigKind:    fs.String("trigger", "cycle", "trigger kind: cycle, instret, breakpoint, data-access, branch, call, task-switch, rtc"),
		trigCycle:   fs.Uint64("trigger-cycle", 0, "cycle for cycle triggers"),
		trigAddr:    fs.Uint64("trigger-addr", 0, "address for breakpoint/data-access triggers"),
		trigOcc:     fs.Int("trigger-occurrence", 1, "occurrence count"),
		window:      fs.String("window", "", "random injection window lo:hi (cycles)"),
		experiments: fs.Int("experiments", 100, "number of fault injection experiments"),
		seed:        fs.Int64("seed", 1, "campaign seed"),
		timeout:     fs.Uint64("timeout", 300000, "termination time-out in cycles"),
		maxIter:     fs.Int("max-iterations", 0, "iteration limit for loop workloads (0 = run to HALT)"),
		wl:          fs.String("workload", "sort16", "built-in workload name"),
		envName:     fs.String("envsim", "", "environment simulator (empty = none)"),
		logMode:     fs.String("log", "normal", "log mode: normal or detail"),
		victim:      fs.String("victim", "", "victim binary path (proc targets; overrides -workload)"),
	}
}

// campaign builds the Campaign the parsed flags describe.
func (cf *campaignFlags) campaign() (*campaign.Campaign, error) {
	if *cf.name == "" {
		return nil, fmt.Errorf("-campaign is required")
	}
	var spec campaign.WorkloadSpec
	if *cf.victim != "" {
		// A victim binary is the workload for live-process targets: the
		// path travels in Source, so no built-in lookup applies.
		spec = campaign.WorkloadSpec{
			Name:   "victim:" + filepath.Base(*cf.victim),
			Source: *cf.victim,
		}
	} else {
		var ok bool
		spec, ok = workload.All()[*cf.wl]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (see 'goofi workloads')", *cf.wl)
		}
	}
	camp := &campaign.Campaign{
		Name:       *cf.name,
		TargetName: *cf.target,
		ChainName:  *cf.chain,
		Locations:  splitList(*cf.locations),
		Observe:    splitList(*cf.observe),
		FaultModel: faultmodel.Spec{
			Kind:         faultmodel.Kind(*cf.model),
			Multiplicity: *cf.mult,
			ActiveProb:   *cf.activeProb,
		},
		Trigger: trigger.Spec{
			Kind:       *cf.trigKind,
			Cycle:      *cf.trigCycle,
			Addr:       uint32(*cf.trigAddr),
			Occurrence: *cf.trigOcc,
		},
		NumExperiments: *cf.experiments,
		Seed:           *cf.seed,
		Termination: campaign.Termination{
			TimeoutCycles: *cf.timeout,
			MaxIterations: *cf.maxIter,
		},
		Workload: spec,
		LogMode:  campaign.LogMode(*cf.logMode),
	}
	if camp.FaultModel.Kind != faultmodel.Intermittent {
		camp.FaultModel.ActiveProb = 0
	}
	if *cf.window != "" {
		lo, hi, err := parseWindow(*cf.window)
		if err != nil {
			return nil, err
		}
		camp.RandomWindow = [2]uint64{lo, hi}
	}
	if *cf.envName != "" {
		camp.EnvSim = &campaign.EnvSimSpec{Name: *cf.envName}
	}
	return camp, nil
}

func cmdSetup(args []string) error {
	fs := flag.NewFlagSet("setup", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	cf := newCampaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	camp, err := cf.campaign()
	if err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := st.PutCampaign(camp); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("campaign %q stored: %d experiments on %s over %v\n",
		camp.Name, camp.NumExperiments, camp.Workload.Name, camp.Locations)
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	name := fs.String("into", "", "name of the merged campaign (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || fs.NArg() < 2 {
		return fmt.Errorf("merge: need -into and at least two source campaigns")
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	merged, err := st.MergeCampaigns(*name, fs.Args()...)
	if err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("merged %v into %q: %d experiments over %d locations\n",
		fs.Args(), merged.Name, merged.NumExperiments, len(merged.Locations))
	return nil
}

// paramFlags collects repeated -target-param key=value flags into a
// target configuration.
type paramFlags map[string]string

func (p paramFlags) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	p[k] = v
	return nil
}

// resolveTarget turns the -target / -technique flag pair into a
// registry entry and an algorithm. Either flag alone is enough: a bare
// technique selects the like-named target (the historical CLI
// contract), a bare target runs its default algorithm.
func resolveTarget(kind, technique string, params map[string]string) (core.TargetInfo, core.TargetConfig, core.Algorithm, error) {
	if kind == "" {
		kind = technique
	}
	if kind == "" {
		kind = "scifi"
	}
	info, ok := core.LookupTarget(kind)
	if !ok {
		return core.TargetInfo{}, core.TargetConfig{}, core.Algorithm{},
			fmt.Errorf("unknown target %q (see 'goofi targets')", kind)
	}
	algName := technique
	if algName == "" {
		algName = info.Algorithm
	}
	alg, ok := core.Algorithms()[algName]
	if !ok {
		return core.TargetInfo{}, core.TargetConfig{}, core.Algorithm{},
			fmt.Errorf("unknown technique %q", algName)
	}
	return info, core.TargetConfig{Params: params}, alg, nil
}

// registryFactory builds the board factory from a registry entry. The
// first construction is validated eagerly by the caller; later ones
// reuse the same config, so a failure there is a programming error the
// runner's recovery layer converts to a wedge.
func registryFactory(info core.TargetInfo, cfg core.TargetConfig) func() core.TargetSystem {
	return func() core.TargetSystem {
		ts, err := info.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("target %q factory: %v", info.Kind, err))
		}
		return ts
	}
}

func cmdTargets(args []string) error {
	fs := flag.NewFlagSet("targets", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, ti := range core.Targets() {
		fmt.Printf("%s\n    %s\n", ti.Kind, ti.Description)
		det := "deterministic (byte-identical reruns)"
		if !ti.Deterministic {
			det = "plan-deterministic (statistical outcomes)"
		}
		fmt.Printf("    algorithm: %s, %s\n", ti.Algorithm, det)
		if len(ti.Aliases) > 0 {
			fmt.Printf("    aliases: %s\n", strings.Join(ti.Aliases, ", "))
		}
	}
	return nil
}

// robustFlags is the fault-tolerance and chaos flag group shared by run
// and resume. Retry flags configure the scheduler's recovery layer;
// chaos flags wrap every board in a seeded flaky-harness fault model,
// the self-test for that layer.
type robustFlags struct {
	maxRetries     *int
	boardThreshold *int
	watchdog       *time.Duration
	chaosSeed      *int64
	chaosScanRead  *float64
	chaosScanWrite *float64
	chaosHang      *float64
	chaosPersist   *float64
	chaosMaxFaults *int
	chaosSilent    *bool
}

func addRobustFlags(fs *flag.FlagSet) *robustFlags {
	return &robustFlags{
		maxRetries: fs.Int("max-retries", 0,
			"retries per experiment after a harness failure (0 = fail the campaign on the first error)"),
		boardThreshold: fs.Int("board-failure-threshold", 0,
			"consecutive failures before a board is quarantined (0 = never)"),
		watchdog: fs.Duration("watchdog", 0,
			"per-experiment wall-clock deadline; a board past it is wedged and power-cycled (0 = none)"),
		chaosSeed:      fs.Int64("chaos-seed", 1, "seed for the chaos fault model"),
		chaosScanRead:  fs.Float64("chaos-scan-read", 0, "chaos: scan-read corruption probability"),
		chaosScanWrite: fs.Float64("chaos-scan-write", 0, "chaos: scan-write failure probability"),
		chaosHang:      fs.Float64("chaos-hang", 0, "chaos: board hang probability (pair with -watchdog)"),
		chaosPersist:   fs.Float64("chaos-persistent", 0, "chaos: probability a fault presents as persistent"),
		chaosMaxFaults: fs.Int("chaos-max-faults", 0, "chaos: total injected-fault budget (0 = unlimited)"),
		chaosSilent:    fs.Bool("chaos-silent", false, "chaos: corrupt scan reads without reporting an error"),
	}
}

// options returns the scheduler options the flag values ask for.
func (rf *robustFlags) options() []core.RunnerOption {
	if *rf.maxRetries == 0 && *rf.boardThreshold == 0 && *rf.watchdog == 0 {
		return nil
	}
	return []core.RunnerOption{core.WithRetryPolicy(core.RetryPolicy{
		MaxRetries:            *rf.maxRetries,
		BoardFailureThreshold: *rf.boardThreshold,
		WatchdogTimeout:       *rf.watchdog,
	})}
}

// wrapFactory layers the chaos fault model over a target factory when
// any chaos probability is set. Each board draws from its own stream,
// derived from -chaos-seed by creation order.
func (rf *robustFlags) wrapFactory(factory func() core.TargetSystem) func() core.TargetSystem {
	if *rf.chaosScanRead == 0 && *rf.chaosScanWrite == 0 && *rf.chaosHang == 0 {
		return factory
	}
	var n int64
	return func() core.TargetSystem {
		return chaos.Wrap(factory(), chaos.Config{
			Seed:               *rf.chaosSeed + atomic.AddInt64(&n, 1),
			ScanReadCorruption: *rf.chaosScanRead,
			ScanWriteError:     *rf.chaosScanWrite,
			HangProb:           *rf.chaosHang,
			PersistentProb:     *rf.chaosPersist,
			MaxFaults:          *rf.chaosMaxFaults,
			Silent:             *rf.chaosSilent,
		})
	}
}

// telemetryFlags is the observability flag group shared by run and
// resume: a live HTTP introspection endpoint and a throttled stderr
// progress line. The atomic metric counters are always on; these flags
// only control where (and whether) they are exposed.
type telemetryFlags struct {
	addr     *string
	progress *bool
}

func addTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	return &telemetryFlags{
		addr: fs.String("telemetry-addr", "",
			"serve /metrics, /healthz, /progress and pprof on this address (e.g. :9090; empty = off)"),
		progress: fs.Bool("progress", false,
			"print a throttled one-line progress report to stderr"),
	}
}

// enabled reports whether any telemetry output is requested; the span
// tracer records (and the CampaignTelemetry table fills) only then.
func (tf *telemetryFlags) enabled() bool { return *tf.addr != "" || *tf.progress }

// start builds the runner's telemetry attachments and brings up the
// requested outputs: the Progress tracker (always — the final summary's
// throughput numbers come from it), the span tracer when telemetry is
// on, the HTTP server when -telemetry-addr is set, and the stderr
// reporter when -progress is set. stop shuts the outputs down and is
// idempotent, so callers stop before printing the summary and also
// defer it for early error returns.
func (tf *telemetryFlags) start(boards int) (tr *telemetry.Tracer, prog *telemetry.Progress, stop func(), err error) {
	prog = telemetry.NewProgress(boards)
	if tf.enabled() {
		tr = telemetry.NewTracer()
	}
	var srv *telemetry.Server
	if *tf.addr != "" {
		srv, err = telemetry.NewServer(*tf.addr, telemetry.Default, prog)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics\n", srv.Addr())
	}
	done := make(chan struct{})
	var reporter sync.WaitGroup
	if *tf.progress {
		reporter.Add(1)
		go func() {
			defer reporter.Done()
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					s := prog.Snapshot()
					fmt.Fprintf(os.Stderr, "[%s] %s %d/%d (%.1f rec/s, eta %s, %d retried, %d invalid)\n",
						s.Campaign, s.Phase, s.Done, s.Total, s.RecordsPerSecond,
						time.Duration(s.ETASeconds*float64(time.Second)).Round(time.Second),
						s.Retried, s.InvalidRuns)
				}
			}
		}()
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(done)
			reporter.Wait()
			if srv != nil {
				// Graceful: let an in-flight /metrics scrape finish
				// instead of cutting its connection mid-response.
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = srv.Shutdown(ctx)
			}
		})
	}
	return tr, prog, stop, nil
}

// storeSpans drains the tracer into the CampaignTelemetry table so the
// analysis phase can break campaign time down offline.
func storeSpans(st *campaign.Store, name string, tr *telemetry.Tracer) error {
	if tr == nil {
		return nil
	}
	return st.LogTelemetry(name, tr.Drain())
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	name := fs.String("campaign", "", "campaign to run (required)")
	technique := fs.String("technique", "", "fault injection algorithm: scifi, swifi-preruntime, swifi-runtime, pin-level (default: the target's own)")
	targetKind := fs.String("target", "", "target system kind (see 'goofi targets'; default: derived from -technique, else scifi)")
	params := paramFlags{}
	fs.Var(params, "target-param", "target-specific key=value parameter (repeatable)")
	rerun := fs.String("rerun", "", "re-run one experiment by name (detail mode), recording parentExperiment")
	preFilter := fs.Bool("pre-injection", false, "enable pre-injection liveness filtering")
	boards := fs.Int("boards", 1, "number of simulated boards to run in parallel")
	ckpt := fs.Int("checkpoint", core.DefaultCheckpointInterval,
		"experiments between durable checkpoints (0 disables crash recovery)")
	noFwd := fs.Bool("no-checkpoints", false,
		"disable checkpoint fast-forwarding (every experiment replays the full fault-free prefix)")
	placement := fs.String("forward-placement", core.PlacementInterval,
		"checkpoint placement strategy: interval (evenly spaced over the injection window) or optimal (minimises expected re-emulation over the drawn injection plan)")
	noFast := fs.Bool("no-fastpath", false,
		"run every cycle through the cycle-accurate step path instead of thor's batched fast path (outcomes are identical either way; scifi technique only)")
	quiet := fs.Bool("quiet", false, "suppress the progress line")
	rf := addRobustFlags(fs)
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("run: -campaign is required")
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	camp, err := st.GetCampaign(*name)
	if err != nil {
		return err
	}
	tsd, err := st.GetTargetSystem(camp.TargetName)
	if err != nil {
		return err
	}
	if *noFast {
		params["fastpath"] = "off"
	}
	info, tcfg, alg, err := resolveTarget(*targetKind, *technique, params)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	// Build one board eagerly so a bad target configuration fails here
	// with a real error instead of panicking inside the board pool.
	if _, err := info.New(tcfg); err != nil {
		return fmt.Errorf("run: target %q: %w", info.Kind, err)
	}
	factory := rf.wrapFactory(registryFactory(info, tcfg))
	// Batch LoggedSystemState writes: the scheduler flushes the sink at
	// checkpoints and on termination, and Close drains it before save.
	sink := campaign.NewBatchingSink(st, 0)
	defer sink.Close()
	tr, prog, stopTelemetry, err := tf.start(*boards)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	opts := []core.RunnerOption{
		core.WithSink(sink),
		core.WithBoards(*boards, factory),
		core.WithTelemetry(tr, prog),
	}
	opts = append(opts, rf.options()...)
	if *ckpt > 0 {
		opts = append(opts, core.WithCheckpoints(*ckpt))
	}
	switch {
	case *noFwd:
		opts = append(opts, core.WithForwarding(core.ForwardConfig{Disabled: true}))
	case *placement == core.PlacementOptimal:
		opts = append(opts, core.WithForwarding(core.ForwardConfig{Placement: core.PlacementOptimal}))
	case *placement != core.PlacementInterval:
		return fmt.Errorf("run: unknown -forward-placement %q (want %q or %q)",
			*placement, core.PlacementInterval, core.PlacementOptimal)
	}
	if !*quiet {
		opts = append(opts, core.WithProgress(progressLine))
	}
	if *preFilter {
		a, err := preinject.AnalyzeWorkload(thor.DefaultConfig(), camp)
		if err != nil {
			return fmt.Errorf("run: pre-injection analysis: %w", err)
		}
		opts = append(opts, core.WithInjectionFilter(a.Filter()))
	}
	r, err := core.NewRunner(factory(), alg, camp, tsd, opts...)
	if err != nil {
		return err
	}
	if *rerun != "" {
		ex, err := r.Rerun(*rerun, true)
		if err != nil {
			return err
		}
		if err := sink.Close(); err != nil {
			return err
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Printf("\nre-ran %s as %s (outcome: %s)\n", *rerun, ex.Name, ex.Result.Outcome.Status)
		return nil
	}
	// A fresh run starts from a clean slate: previous results, phase
	// spans, and any stale resume cursor go.
	if err := st.DeleteCheckpoint(camp.Name); err != nil {
		return err
	}
	if err := st.DeleteExperiments(camp.Name); err != nil {
		return err
	}
	if err := st.DeleteTelemetry(camp.Name); err != nil {
		return err
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		return err
	}
	stopTelemetry()
	if err := storeSpans(st, camp.Name, tr); err != nil {
		return err
	}
	return finishCampaign(st, db, sink, camp.Name, sum, 0, prog)
}

// finishCampaign drains the sink, clears the resume cursor of a fully
// completed campaign, compacts the WAL into the snapshot, and prints the
// summary. resumed is how many experiments an earlier interrupted run
// had already contributed. The wall-clock and throughput lines come
// from the telemetry Progress tracker so the summary and the /progress
// endpoint can't drift.
func finishCampaign(st *campaign.Store, db *sqldb.DB, sink *campaign.BatchingSink,
	name string, sum *core.Summary, resumed int, prog *telemetry.Progress) error {
	if err := sink.Close(); err != nil {
		return err
	}
	camp, err := st.GetCampaign(name)
	if err != nil {
		return err
	}
	if resumed+sum.Experiments >= camp.NumExperiments {
		if err := st.DeleteCheckpoint(name); err != nil {
			return err
		}
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if resumed > 0 {
		fmt.Printf("\ncampaign %s finished: %d experiments this run (%d restored from checkpoint), %d injected, %d skipped by pre-injection filter\n",
			sum.Campaign, sum.Experiments, resumed, sum.Injected, sum.Skipped)
	} else {
		fmt.Printf("\ncampaign %s finished: %d experiments, %d injected, %d skipped by pre-injection filter\n",
			sum.Campaign, sum.Experiments, sum.Injected, sum.Skipped)
	}
	if prog != nil {
		s := prog.Snapshot()
		if s.ElapsedSeconds > 0 {
			fmt.Printf("  wall clock: %v (%.1f records/sec)\n",
				time.Duration(s.ElapsedSeconds*float64(time.Second)).Round(time.Millisecond),
				s.RecordsPerSecond)
		}
	}
	statuses := make([]string, 0, len(sum.ByStatus))
	for status := range sum.ByStatus {
		statuses = append(statuses, string(status))
	}
	sort.Strings(statuses)
	for _, status := range statuses {
		fmt.Printf("  %-12s %d\n", status, sum.ByStatus[campaign.OutcomeStatus(status)])
	}
	if !sum.Deterministic && sum.PlanHash != "" {
		// Nondeterministic targets replay the plan, not the bytes: print
		// the hash so same-seed reruns can be checked for plan identity.
		fmt.Printf("  fault plan %s (nondeterministic target: plan is seed-stable, outcomes are statistical)\n",
			sum.PlanHash)
	}
	if sum.Forwarded > 0 {
		fmt.Printf("  fast-forwarded %d experiments: %d cycles emulated, %d saved by checkpoint restore\n",
			sum.Forwarded, sum.CyclesEmulated, sum.CyclesSaved)
	}
	if sum.ForwardPlacement != "" {
		fmt.Printf("  checkpoint placement %q: predicted re-emulation %d cycles, achieved %d\n",
			sum.ForwardPlacement, sum.ForwardPredictedDelta, sum.ForwardDeltaCycles)
	}
	if sum.Retried > 0 || sum.InvalidRuns > 0 || sum.QuarantinedBoards > 0 {
		fmt.Printf("  harness recovery: %d retries, %d invalid runs, %d boards quarantined\n",
			sum.Retried, sum.InvalidRuns, sum.QuarantinedBoards)
	}
	return nil
}

// cmdResume continues an interrupted campaign from its durable cursor:
// already-logged experiments are skipped and the rest of the same plan
// runs, producing results byte-identical to an uninterrupted run.
func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	name := fs.String("campaign", "", "campaign to resume (or pass it as the positional argument)")
	technique := fs.String("technique", "", "fault injection algorithm: scifi, swifi-preruntime, swifi-runtime, pin-level (default: the target's own)")
	targetKind := fs.String("target", "", "target system kind (see 'goofi targets'; default: derived from -technique, else scifi)")
	params := paramFlags{}
	fs.Var(params, "target-param", "target-specific key=value parameter (repeatable)")
	boards := fs.Int("boards", 1, "number of simulated boards to run in parallel")
	ckpt := fs.Int("checkpoint", core.DefaultCheckpointInterval,
		"experiments between durable checkpoints (0 disables crash recovery)")
	quiet := fs.Bool("quiet", false, "suppress the progress line")
	retryInvalid := fs.Bool("retry-invalid", false,
		"delete invalid-run records and re-attempt those experiments")
	rf := addRobustFlags(fs)
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" && fs.NArg() > 0 {
		*name = fs.Arg(0)
	}
	if *name == "" {
		return fmt.Errorf("resume: a campaign name is required")
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	camp, err := st.GetCampaign(*name)
	if err != nil {
		return err
	}
	tsd, err := st.GetTargetSystem(camp.TargetName)
	if err != nil {
		return err
	}
	cp, err := st.RecoverCursor(camp.Name)
	if err != nil {
		return err
	}
	if !cp.Reference && len(cp.Completed) == 0 {
		return fmt.Errorf("resume: campaign %q has no checkpoint or logged experiments ('goofi run' starts it)", camp.Name)
	}
	if *retryInvalid {
		// Invalid runs are final by default — a resumed campaign skips
		// them like any completed slot. Opting in deletes their records
		// and drops them from the cursor so the scheduler re-attempts
		// them under this run's retry policy.
		kept := cp.Completed[:0]
		dropped := 0
		for _, seq := range cp.Completed {
			rec, err := st.GetExperiment(campaign.ExperimentName(camp.Name, seq))
			if err != nil {
				return err
			}
			if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
				if err := st.DeleteExperiment(rec.Name); err != nil {
					return err
				}
				dropped++
				continue
			}
			kept = append(kept, seq)
		}
		cp.Completed = kept
		fmt.Printf("re-attempting %d invalid run(s)\n", dropped)
	}
	info, tcfg, alg, err := resolveTarget(*targetKind, *technique, params)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if _, err := info.New(tcfg); err != nil {
		return fmt.Errorf("resume: target %q: %w", info.Kind, err)
	}
	factory := rf.wrapFactory(registryFactory(info, tcfg))
	sink := campaign.NewBatchingSink(st, 0)
	defer sink.Close()
	tr, prog, stopTelemetry, err := tf.start(*boards)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	opts := []core.RunnerOption{
		core.WithSink(sink),
		core.WithBoards(*boards, factory),
		core.WithResume(cp),
		core.WithTelemetry(tr, prog),
	}
	opts = append(opts, rf.options()...)
	if *ckpt > 0 {
		opts = append(opts, core.WithCheckpoints(*ckpt))
	}
	if !*quiet {
		opts = append(opts, core.WithProgress(progressLine))
	}
	r, err := core.NewRunner(factory(), alg, camp, tsd, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("resuming %s: %d/%d experiments already durable\n",
		camp.Name, len(cp.Completed), camp.NumExperiments)
	sum, err := r.Run(context.Background())
	if err != nil {
		return err
	}
	stopTelemetry()
	if err := storeSpans(st, camp.Name, tr); err != nil {
		return err
	}
	return finishCampaign(st, db, sink, camp.Name, sum, len(cp.Completed), prog)
}

// progressLine renders the Fig 7 progress window on one terminal line.
func progressLine(ev core.ProgressEvent) {
	switch ev.Phase {
	case "reference":
		fmt.Printf("\r[%s] reference run...                    ", ev.Campaign)
	case "experiment":
		fmt.Printf("\r[%s] experiment %d/%d (%s: %s)      ",
			ev.Campaign, ev.Done, ev.Total, ev.Experiment, ev.Outcome)
	case "paused":
		fmt.Printf("\r[%s] paused                              ", ev.Campaign)
	case "done", "stopped":
		fmt.Printf("\r[%s] %s: %d/%d experiments            ",
			ev.Campaign, ev.Phase, ev.Done, ev.Total)
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	name := fs.String("campaign", "", "campaign to analyze (required)")
	sql := fs.Bool("sql", false, "also run the generated SQL analysis queries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("analyze: -campaign is required")
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	rep, err := analysis.AnalyzeAndStore(st, *name)
	if err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	fmt.Print(rep.Render())
	// Campaigns run with telemetry also get a harness-side breakdown of
	// where the wall-clock time went.
	if pt, err := analysis.PhaseTimes(st, *name); err != nil {
		return err
	} else if pt != nil {
		fmt.Println()
		fmt.Print(pt.Render())
	}
	if *sql {
		results, err := analysis.RunGenerated(st, *name)
		if err != nil {
			return err
		}
		for _, q := range analysis.GeneratedQueries() {
			r := results[q.Name]
			fmt.Printf("\n-- %s\n", q.Name)
			fmt.Println(strings.Join(r.Cols, "\t"))
			for _, row := range r.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, "\t"))
			}
		}
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dbPath := fs.String("db", "goofi.db", "GOOFI database file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, db, err := openStore(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	targets, err := st.ListTargetSystems()
	if err != nil {
		return err
	}
	fmt.Println("target systems:")
	for _, t := range targets {
		fmt.Printf("  %s\n", t)
	}
	camps, err := st.ListCampaigns()
	if err != nil {
		return err
	}
	fmt.Println("campaigns:")
	for _, c := range camps {
		camp, err := st.GetCampaign(c)
		if err != nil {
			return err
		}
		recs, err := st.Experiments(c)
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s %4d experiments planned, %4d logged, workload %s\n",
			c, camp.NumExperiments, len(recs), camp.Workload.Name)
	}
	return nil
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, ddl := range campaign.Schema {
		fmt.Println(ddl + ";")
	}
	fmt.Println(analysis.ResultsDDL + ";")
	return nil
}

func cmdWorkloads(args []string) error {
	fs := flag.NewFlagSet("workloads", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := workload.All()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		spec := all[n]
		fmt.Printf("  %-20s in=%d out=%d results=%v\n",
			n, spec.InputPort, spec.OutputPort, spec.ResultSymbols)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseWindow(s string) (lo, hi uint64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("window must be lo:hi, got %q", s)
	}
	lo, err = strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window low bound: %w", err)
	}
	hi, err = strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window high bound: %w", err)
	}
	return lo, hi, nil
}
