package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
)

// runCmd invokes the CLI entry point with a temp-dir database.
func runCmd(t *testing.T, args ...string) error {
	t.Helper()
	return run(args)
}

func dbPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.db")
}

func TestFullPhaseWorkflow(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db, "-target", "thor-board"},
		{"setup", "-db", db, "-campaign", "cli-test", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "8", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "cli-test", "-quiet"},
		{"analyze", "-db", db, "-campaign", "cli-test", "-sql"},
		{"list", "-db", db},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
	if _, err := os.Stat(db); err != nil {
		t.Fatalf("database file not written: %v", err)
	}
}

func TestRunParallelBoards(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "par", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "8", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "par", "-boards", "4", "-quiet"},
		{"analyze", "-db", db, "-campaign", "par"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
}

func TestRunWithPreInjection(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "pi", "-workload", "sort16",
			"-locations", "cpu.r1,cpu.r2,cpu.r8", "-window", "10:1600",
			"-experiments", "5", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "pi", "-pre-injection", "-quiet"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
}

func TestMergeCommand(t *testing.T) {
	db := dbPath(t)
	base := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "a", "-workload", "sort16",
			"-locations", "cpu.r1", "-window", "10:1600", "-experiments", "3", "-timeout", "100000"},
		{"setup", "-db", db, "-campaign", "b", "-workload", "sort16",
			"-locations", "cpu.r2", "-window", "10:1600", "-experiments", "4", "-timeout", "100000"},
	}
	for _, step := range base {
		if err := runCmd(t, step...); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCmd(t, "merge", "-db", db, "-into", "ab", "a", "b"); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := runCmd(t, "run", "-db", db, "-campaign", "ab", "-quiet"); err != nil {
		t.Fatalf("run merged: %v", err)
	}
}

func TestRerunCommand(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "rr", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "3", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "rr", "-quiet"},
		{"run", "-db", db, "-campaign", "rr", "-rerun", "rr/exp00001", "-quiet"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
}

// TestResumeCommand interrupts a checkpointed campaign mid-run,
// abandons the database file the way a killed process would (no
// compaction, no graceful close), and checks that `goofi resume`
// finishes the campaign and clears the cursor.
func TestResumeCommand(t *testing.T) {
	db := dbPath(t)
	for _, step := range [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "res", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "10", "-timeout", "100000"},
	} {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}

	// The interrupted run: stop after 3 experiments, then walk away from
	// the open database. Recovery must work from the snapshot and
	// write-ahead log alone.
	sdb, err := sqldb.OpenAt(db, sqldb.SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	st, err := campaign.NewStore(sdb)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := st.GetCampaign("res")
	if err != nil {
		t.Fatal(err)
	}
	tsd, err := st.GetTargetSystem(camp.TargetName)
	if err != nil {
		t.Fatal(err)
	}
	var (
		r    *core.Runner
		mu   sync.Mutex
		seen int
	)
	r, err = core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd,
		core.WithSink(st), core.WithCheckpoints(2),
		core.WithProgress(func(ev core.ProgressEvent) {
			if ev.Phase != "experiment" {
				return
			}
			mu.Lock()
			seen++
			stop := seen == 3
			mu.Unlock()
			if stop {
				r.Stop()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments >= camp.NumExperiments {
		t.Fatalf("interruption failed: %d experiments ran", sum.Experiments)
	}

	if err := runCmd(t, "resume", "-db", db, "-campaign", "res", "-quiet"); err != nil {
		t.Fatalf("goofi resume: %v", err)
	}

	sdb2, err := sqldb.OpenAt(db, sqldb.SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb2.Close()
	st2, err := campaign.NewStore(sdb2)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st2.Experiments("res")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != camp.NumExperiments+1 { // + reference run
		t.Errorf("after resume: %d logged records, want %d", len(recs), camp.NumExperiments+1)
	}
	cp, err := st2.GetCheckpoint("res")
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		t.Errorf("completed campaign still has a cursor: %+v", cp)
	}
	sdb2.Close()

	// The resumed data feeds the analysis phase like any other.
	if err := runCmd(t, "analyze", "-db", db, "-campaign", "res"); err != nil {
		t.Fatalf("goofi analyze after resume: %v", err)
	}
}

func TestResumeWithoutStateFails(t *testing.T) {
	db := dbPath(t)
	for _, step := range [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "fresh", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "3", "-timeout", "100000"},
	} {
		if err := runCmd(t, step...); err != nil {
			t.Fatal(err)
		}
	}
	// Positional campaign name, never run: nothing to resume.
	if err := runCmd(t, "resume", "-db", db, "-quiet", "fresh"); err == nil {
		t.Error("resume of a never-started campaign succeeded")
	}
	if err := runCmd(t, "resume", "-db", db, "-quiet"); err == nil {
		t.Error("resume without a campaign name succeeded")
	}
}

func TestSWIFITechniques(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db, "-target", "thor-swifi", "-kind", "swifi", "-image-bytes", "512"},
		{"setup", "-db", db, "-campaign", "sw", "-target", "thor-swifi",
			"-chain", "memory", "-locations", "mem", "-workload", "sort16",
			"-trigger", "cycle", "-trigger-cycle", "0",
			"-experiments", "5", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "sw", "-technique", "swifi-preruntime", "-quiet"},
		{"analyze", "-db", db, "-campaign", "sw"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
}

func TestSchemaAndWorkloads(t *testing.T) {
	if err := runCmd(t, "schema"); err != nil {
		t.Error(err)
	}
	if err := runCmd(t, "workloads"); err != nil {
		t.Error(err)
	}
	if err := runCmd(t, "help"); err != nil {
		t.Error(err)
	}
}

func TestErrorPaths(t *testing.T) {
	db := dbPath(t)
	cases := [][]string{
		{},
		{"bogus"},
		{"setup", "-db", db}, // missing -campaign
		{"setup", "-db", db, "-campaign", "x", "-workload", "nope"},
		{"run", "-db", db},                      // missing -campaign
		{"run", "-db", db, "-campaign", "none"}, // unknown campaign
		{"analyze", "-db", db},
		{"merge", "-db", db, "-into", "x"}, // too few sources
		{"configure", "-db", db, "-kind", "alien"},
		{"setup", "-db", db, "-campaign", "x", "-window", "nonsense"},
	}
	for _, args := range cases {
		if err := runCmd(t, args...); err == nil {
			t.Errorf("goofi %v succeeded, want error", args)
		}
	}
}

func TestRunUnknownTechnique(t *testing.T) {
	db := dbPath(t)
	if err := runCmd(t, "configure", "-db", db); err != nil {
		t.Fatal(err)
	}
	if err := runCmd(t, "setup", "-db", db, "-campaign", "t", "-workload", "sort16",
		"-window", "10:1600", "-experiments", "1", "-timeout", "100000"); err != nil {
		t.Fatal(err)
	}
	if err := runCmd(t, "run", "-db", db, "-campaign", "t", "-technique", "telepathy"); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestParseWindow(t *testing.T) {
	lo, hi, err := parseWindow("10:200")
	if err != nil || lo != 10 || hi != 200 {
		t.Errorf("parseWindow = %d %d %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "a:b", "1:b", "a:2"} {
		if _, _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) accepted", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("splitList(\"\") != nil")
	}
}

// TestRunWithChaosAndRetries: the chaos flags make the harness flaky and
// the retry flags absorb it — the campaign must complete and analyze
// with no invalid runs.
func TestRunWithChaosAndRetries(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "flaky", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "6", "-timeout", "100000"},
		{"run", "-db", db, "-campaign", "flaky", "-quiet",
			"-chaos-scan-read", "0.4", "-chaos-max-faults", "4", "-chaos-seed", "11",
			"-max-retries", "6"},
		{"analyze", "-db", db, "-campaign", "flaky"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
	st, sdb, err := openStore(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	recs, err := st.Experiments("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // reference + 6
		t.Fatalf("store holds %d records, want 7", len(recs))
	}
	for _, rec := range recs {
		if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
			t.Errorf("%s is invalid despite retries", rec.Name)
		}
	}
}

// TestResumeRetryInvalid: a campaign run against an unrecoverable chaos
// harness records every experiment as an invalid run; goofi resume
// -retry-invalid against a healthy harness re-attempts exactly those and
// completes them.
func TestResumeRetryInvalid(t *testing.T) {
	db := dbPath(t)
	steps := [][]string{
		{"configure", "-db", db},
		{"setup", "-db", db, "-campaign", "sick", "-workload", "sort16",
			"-window", "10:1600", "-experiments", "4", "-timeout", "100000"},
		// Every DR write exchange fails. The reference run never writes
		// the scan chain, so it completes; every injected experiment
		// burns its one retry and is recorded invalid.
		{"run", "-db", db, "-campaign", "sick", "-quiet",
			"-chaos-scan-write", "1", "-max-retries", "1"},
	}
	for _, step := range steps {
		if err := runCmd(t, step...); err != nil {
			t.Fatalf("goofi %s: %v", strings.Join(step, " "), err)
		}
	}
	st, sdb, err := openStore(db)
	if err != nil {
		t.Fatal(err)
	}
	invalid := 0
	recs, err := st.Experiments("sick")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
			invalid++
		}
	}
	sdb.Close()
	if invalid != 4 {
		t.Fatalf("%d invalid runs recorded, want 4", invalid)
	}

	// A plain resume has nothing to do: invalid slots are final.
	if err := runCmd(t, "resume", "-db", db, "-campaign", "sick", "-quiet"); err != nil {
		t.Fatalf("plain resume: %v", err)
	}

	// Opting in re-attempts them against the now-healthy harness.
	if err := runCmd(t, "resume", "-db", db, "-campaign", "sick", "-quiet",
		"-retry-invalid", "-max-retries", "2"); err != nil {
		t.Fatalf("resume -retry-invalid: %v", err)
	}
	st, sdb, err = openStore(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	recs, err = st.Experiments("sick")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 { // reference + 4
		t.Fatalf("store holds %d records after retry, want 5", len(recs))
	}
	for _, rec := range recs {
		if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
			t.Errorf("%s still invalid after -retry-invalid", rec.Name)
		}
	}
}
