package main

// The goofid client subcommands: submit, status, results, cancel, and
// shard-worker. They speak the daemon's JSON API and share the
// campaign-definition flag group with `goofi setup`, so a definition
// that runs locally submits unchanged.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goofi/internal/chaos"
	"goofi/internal/server"
	"goofi/internal/shard"
)

// apiBase normalizes -server into a URL prefix: a bare host:port gets
// http://.
func apiBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// apiCall performs one request and decodes the JSON response into out
// (unless out is nil). Error payloads become errors.
func apiCall(method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(blob)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

func statusLine(st *server.JobStatus) string {
	line := fmt.Sprintf("%s/%s: %s", st.Tenant, st.Campaign, st.State)
	if st.Progress != nil {
		line += fmt.Sprintf(" (%d/%d, phase %s)", st.Progress.Done, st.Progress.Total, st.Progress.Phase)
	}
	if st.Error != "" {
		line += " — " + st.Error
	}
	return line
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	srvAddr := fs.String("server", "127.0.0.1:7077", "goofid address")
	tenant := fs.String("tenant", "default", "tenant namespace")
	kind := fs.String("kind", "", "target kind (see 'goofi targets'; default from technique)")
	imageBytes := fs.Int("image-bytes", 4096, "workload image size (swifi targets)")
	params := paramFlags{}
	fs.Var(params, "target-param", "target-specific key=value parameter (repeatable)")
	technique := fs.String("technique", "", "injection algorithm: scifi, swifi-preruntime, swifi-runtime, pin-level (default: the target's own)")
	boards := fs.Int("boards", 1, "boards this campaign may lease from the shared fleet")
	ckpt := fs.Int("checkpoint", 0, "durable-cursor interval in experiments (0 = daemon default, -1 disables)")
	noFwd := fs.Bool("no-forward", false, "disable checkpoint fast-forwarding")
	maxRetries := fs.Int("max-retries", 0, "re-attempts per failed experiment")
	failThreshold := fs.Int("board-failure-threshold", 0, "consecutive harness failures before a board is quarantined")
	shards := fs.Int("shards", 0, "partition the plan across this many shard workers (0 = daemon default)")
	external := fs.Bool("external-workers", false, "with -shards, wait for external `goofi shard-worker` processes instead of spawning in-process workers")
	wait := fs.Bool("wait", false, "poll until the campaign finishes")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval with -wait")
	cf := newCampaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	camp, err := cf.campaign()
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if *cf.victim != "" {
		// The daemon configures the target server-side; it needs the
		// victim path to lay out the proc target's memory chain.
		params["victim"] = *cf.victim
	}
	req := server.SubmitRequest{
		Tenant:                *tenant,
		Campaign:              camp,
		TargetKind:            *kind,
		ImageBytes:            *imageBytes,
		TargetParams:          params,
		Technique:             *technique,
		Boards:                *boards,
		Checkpoint:            *ckpt,
		NoForward:             *noFwd,
		MaxRetries:            *maxRetries,
		BoardFailureThreshold: *failThreshold,
		Shards:                *shards,
		ExternalWorkers:       *external,
	}
	base := apiBase(*srvAddr)
	var st server.JobStatus
	if err := apiCall("POST", base+"/api/v1/campaigns", req, &st); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Println("submitted", statusLine(&st))
	if !*wait {
		return nil
	}
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s", base, *tenant, camp.Name)
	for {
		time.Sleep(*poll)
		if err := apiCall("GET", url, nil, &st); err != nil {
			return fmt.Errorf("submit: poll: %w", err)
		}
		switch st.State {
		case server.StateDone, server.StateCancelled:
			fmt.Println(statusLine(&st))
			return nil
		case server.StateFailed:
			return fmt.Errorf("submit: campaign failed: %s", st.Error)
		}
	}
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	srvAddr := fs.String("server", "127.0.0.1:7077", "goofid address")
	tenant := fs.String("tenant", "default", "tenant namespace")
	name := fs.String("campaign", "", "campaign name (empty = list all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := apiBase(*srvAddr)
	if *name == "" {
		var all []server.JobStatus
		if err := apiCall("GET", base+"/api/v1/campaigns", nil, &all); err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if len(all) == 0 {
			fmt.Println("no campaigns")
			return nil
		}
		for i := range all {
			fmt.Println(statusLine(&all[i]))
		}
		return nil
	}
	var st server.JobStatus
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s", base, *tenant, *name)
	if err := apiCall("GET", url, nil, &st); err != nil {
		return fmt.Errorf("status: %w", err)
	}
	fmt.Println(statusLine(&st))
	return nil
}

func cmdResults(args []string) error {
	fs := flag.NewFlagSet("results", flag.ContinueOnError)
	srvAddr := fs.String("server", "127.0.0.1:7077", "goofid address")
	tenant := fs.String("tenant", "default", "tenant namespace")
	name := fs.String("campaign", "", "campaign name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("results: -campaign is required")
	}
	var res server.ResultsResponse
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s/results", apiBase(*srvAddr), *tenant, *name)
	if err := apiCall("GET", url, nil, &res); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	fmt.Print(res.Report)
	return nil
}

// cmdShardWorker runs one external shard worker against a goofid
// coordinator: it leases experiment ranges of the named campaign,
// executes them against a local WAL-backed shard database, and streams
// the logged records back until the coordinator reports the plan done.
func cmdShardWorker(args []string) error {
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	srvAddr := fs.String("server", "127.0.0.1:7077", "goofid address")
	tenant := fs.String("tenant", "default", "tenant namespace")
	name := fs.String("campaign", "", "campaign name (required)")
	workerName := fs.String("name", "", "worker name reported to the coordinator (default host-scoped)")
	dir := fs.String("dir", "", "shard database directory (required)")
	boards := fs.Int("boards", 1, "boards in this worker's private pool")
	poll := fs.Duration("poll", 100*time.Millisecond, "lease poll / retry base interval")
	token := fs.String("token", "", "bearer token for a goofid running with -shard-token")
	callTimeout := fs.Duration("call-timeout", 0, "per-call deadline for lease/heartbeat/hello (0 = built-in default)")
	reportTimeout := fs.Duration("report-timeout", 0, "per-call deadline for record reports (0 = built-in default)")
	retries := fs.Int("retries", 0, "retryable-failure re-attempts per transport call (0 = built-in default, negative disables)")
	chaosSeed := fs.Int64("chaos-net-seed", 0, "network-chaos RNG seed (with any -chaos-net-* probability)")
	chaosDrop := fs.Float64("chaos-net-drop", 0, "probability a request is dropped before reaching the daemon")
	chaosDropResp := fs.Float64("chaos-net-drop-response", 0, "probability the daemon's response is lost after processing")
	chaosDelay := fs.Float64("chaos-net-delay", 0, "probability a call is delayed")
	chaosDelayMS := fs.Int("chaos-net-delay-ms", 20, "added latency when the delay fault fires")
	chaosDup := fs.Float64("chaos-net-dup", 0, "probability a report/heartbeat is delivered twice")
	chaosMax := fs.Int("chaos-net-max-faults", 0, "cap on injected network faults (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("shard-worker: -campaign is required")
	}
	if *dir == "" {
		return fmt.Errorf("shard-worker: -dir is required")
	}
	if *workerName == "" {
		host, _ := os.Hostname()
		*workerName = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	transport := &shard.HTTPTransport{
		Base:          apiBase(*srvAddr),
		Tenant:        *tenant,
		Campaign:      *name,
		Token:         *token,
		CallTimeout:   *callTimeout,
		ReportTimeout: *reportTimeout,
		Retry:         shard.RetryPolicy{MaxRetries: *retries, Seed: *chaosSeed},
	}
	if *chaosDrop > 0 || *chaosDropResp > 0 || *chaosDelay > 0 || *chaosDup > 0 {
		// Self-test mode: the worker crosses a deterministically hostile
		// network, and the merged campaign must still be byte-identical
		// (the CI shard-smoke job runs this against a solo baseline).
		net := chaos.NewNet(chaos.NetConfig{
			Seed:             *chaosSeed,
			DropRequestProb:  *chaosDrop,
			DropResponseProb: *chaosDropResp,
			DelayProb:        *chaosDelay,
			Delay:            time.Duration(*chaosDelayMS) * time.Millisecond,
			DuplicateProb:    *chaosDup,
			MaxFaults:        *chaosMax,
		})
		transport.Client = &http.Client{Transport: net.RoundTripper(nil)}
	}
	w, err := shard.NewWorker(shard.WorkerConfig{
		Name:      *workerName,
		Dir:       *dir,
		Boards:    *boards,
		Transport: transport,
		Poll:      *poll,
	})
	if err != nil {
		return fmt.Errorf("shard-worker: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return fmt.Errorf("shard-worker: %w", err)
	}
	fmt.Printf("shard-worker %s: done\n", *workerName)
	return nil
}

func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	srvAddr := fs.String("server", "127.0.0.1:7077", "goofid address")
	tenant := fs.String("tenant", "default", "tenant namespace")
	name := fs.String("campaign", "", "campaign name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("cancel: -campaign is required")
	}
	var st server.JobStatus
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s/cancel", apiBase(*srvAddr), *tenant, *name)
	if err := apiCall("POST", url, nil, &st); err != nil {
		return fmt.Errorf("cancel: %w", err)
	}
	fmt.Println(statusLine(&st))
	return nil
}
