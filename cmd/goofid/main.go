// Command goofid is the GOOFI campaign daemon: it serves the
// multi-tenant campaign-lifecycle API (submit, status, pause, resume,
// cancel, results) and the telemetry endpoints (/metrics, /progress,
// /healthz, /debug/pprof) from a single listener, running submitted
// campaigns concurrently on a shared board fleet. On SIGINT/SIGTERM it
// stops campaigns at their next durable cursor and checkpoints every
// tenant database; interrupted campaigns resume on the next boot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goofi/internal/server"
)

func main() {
	var (
		data          = flag.String("data", "goofid-data", "data directory (one database per tenant)")
		addr          = flag.String("addr", "127.0.0.1:7077", "HTTP listen address")
		boards        = flag.Int("boards", 4, "shared fleet size (boards leased across campaigns)")
		maxConcurrent = flag.Int("max-concurrent", 2, "campaigns running at once")
		queue         = flag.Int("queue", 8, "accepted-but-not-running campaign cap (429 beyond it)")
		compactEvery  = flag.Duration("compact-interval", time.Minute, "idle tenant database compaction sweep (0 disables)")
		drain         = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before campaigns are cut off")
		shards        = flag.Int("shards", 0, "run every campaign sharded across this many in-process workers unless the submission picks its own count (0 = solo)")
		shardBeat     = flag.Duration("shard-heartbeat", 0, "shard lease heartbeat period (0 = built-in default)")
		shardTTL      = flag.Duration("shard-lease-ttl", 0, "shard lease expiry without a heartbeat; must be >= 2 heartbeats (0 = 3x heartbeat)")
		shardToken    = flag.String("shard-token", "", "shared bearer token external shard workers must present (empty = open)")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		DataDir:         *data,
		Boards:          *boards,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queue,
		CompactInterval: *compactEvery,
		DefaultShards:   *shards,
		ShardHeartbeat:  *shardBeat,
		ShardLeaseTTL:   *shardTTL,
		ShardToken:      *shardToken,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "goofid:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goofid:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("goofid: serve: %v", err)
		}
	}()
	log.Printf("goofid: listening on %s (fleet=%d, max-concurrent=%d, data=%s)",
		ln.Addr(), *boards, *maxConcurrent, *data)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("goofid: shutting down (drain %s)", *drain)

	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = httpSrv.Shutdown(shCtx)
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("goofid: shutdown: %v", err)
		os.Exit(1)
	}
	log.Print("goofid: bye")
}
