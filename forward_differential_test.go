// Differential regression test for checkpoint forwarding: the same
// campaign executed with forwarding enabled and disabled must produce
// byte-identical LoggedSystemState records and an identical analysis
// report. This is the correctness bar for the fast-forwarding subsystem
// — forwarding may only change how many cycles are emulated, never what
// is logged.
package goofi_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/thor"
)

// runDifferential executes camp on a fresh store with the given board
// count and forwarding setting, returning the summary, the analysis
// report, and the JSON-marshalled experiment records in sequence order.
func runDifferential(t *testing.T, camp *campaign.Campaign, boards int,
	forwarding bool) (*core.Summary, *analysis.Report, []string) {
	t.Helper()
	st, tsd := benchStore(t)
	var opts []core.RunnerOption
	if boards > 1 {
		opts = append(opts, core.WithBoards(boards, func() core.TargetSystem {
			return scifi.New(thor.DefaultConfig())
		}))
	}
	if !forwarding {
		opts = append(opts, core.WithForwarding(core.ForwardConfig{Disabled: true}))
	}
	sum, rep := runCampaign(t, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp, opts...)
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(recs))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(b))
	}
	return sum, rep, rows
}

// TestForwardingDifferential is the acceptance gate for checkpoint
// forwarding: across board counts, persistent and transient fault
// models, and workloads with and without an environment simulator, a
// forwarded campaign logs exactly the same records and analysis report
// as a cold one — while emulating measurably fewer cycles.
func TestForwardingDifferential(t *testing.T) {
	cases := []struct {
		name string
		camp func(name string) *campaign.Campaign
	}{
		{"pid-envsim-transient", func(name string) *campaign.Campaign {
			// PID with the first-order plant: exercises the environment-
			// simulator snapshot path on restore.
			c := pidCampaign(name, 12, 17)
			c.RandomWindow = [2]uint64{200, 4000}
			return c
		}},
		{"sort-stuckat1-persistent", func(name string) *campaign.Campaign {
			// Sort without a simulator, persistent stuck-at faults:
			// exercises reassertion after a forwarded restore.
			c := sortCampaign(name, 12, 23, []string{"cpu"})
			c.FaultModel = faultmodel.Spec{Kind: faultmodel.StuckAt1}
			return c
		}},
	}
	for _, tc := range cases {
		for _, boards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/boards=%d", tc.name, boards), func(t *testing.T) {
				name := fmt.Sprintf("diff-%s-b%d", tc.name, boards)
				coldSum, coldRep, coldRecs := runDifferential(t, tc.camp(name), boards, false)
				warmSum, warmRep, warmRecs := runDifferential(t, tc.camp(name), boards, true)

				if coldSum.Forwarded != 0 || coldSum.CyclesSaved != 0 {
					t.Errorf("cold run reports forwarding: %d forwarded, %d saved",
						coldSum.Forwarded, coldSum.CyclesSaved)
				}
				if warmSum.Forwarded == 0 {
					t.Error("warm run forwarded no experiments")
				}
				if warmSum.CyclesSaved == 0 {
					t.Error("warm run saved no cycles")
				}
				if warmSum.CyclesEmulated >= coldSum.CyclesEmulated {
					t.Errorf("warm run emulated %d cycles, cold %d — no reduction",
						warmSum.CyclesEmulated, coldSum.CyclesEmulated)
				}

				if len(coldRecs) != len(warmRecs) {
					t.Fatalf("record counts differ: cold %d, warm %d", len(coldRecs), len(warmRecs))
				}
				for i := range coldRecs {
					if coldRecs[i] != warmRecs[i] {
						t.Errorf("record %d differs\ncold %s\nwarm %s", i, coldRecs[i], warmRecs[i])
					}
				}
				if !reflect.DeepEqual(coldRep, warmRep) {
					t.Errorf("analysis reports differ\ncold %+v\nwarm %+v", coldRep, warmRep)
				}
				t.Logf("forwarded %d/%d, cycles emulated %d (cold %d), saved %d",
					warmSum.Forwarded, len(warmRecs)-1,
					warmSum.CyclesEmulated, coldSum.CyclesEmulated, warmSum.CyclesSaved)
			})
		}
	}
}

// runPlacement executes camp with the given checkpoint placement
// strategy (deterministic snapshot pricing) and returns the summary and
// experiment records.
func runPlacement(t *testing.T, camp *campaign.Campaign, placement string) (*core.Summary, []string) {
	t.Helper()
	st, tsd := benchStore(t)
	sum, _ := runCampaign(t, st, tsd, scifi.New(thor.DefaultConfig()), core.SCIFI, camp,
		core.WithForwarding(core.ForwardConfig{
			Placement: placement,
			// A binding checkpoint budget is the regime placement matters
			// in: with checkpoints to spare, interval spacing already puts
			// one near every injection point.
			MaxCheckpoints:     8,
			SnapshotCostCycles: core.DefaultSnapshotCostCycles,
		}))
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(recs))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(b))
	}
	return sum, rows
}

// TestPlacementDifferential is the acceptance gate for the optimal
// checkpoint planner: against interval placement on the same windowed
// campaign, it must log byte-identical records (placement decides only
// *where* checkpoints go, never what is observed) while emulating no
// more cycles, and the summary must report the strategy plus its
// predicted and achieved re-emulation deltas.
func TestPlacementDifferential(t *testing.T) {
	mk := func(name string) *campaign.Campaign {
		c := pidCampaign(name, 14, 29)
		c.RandomWindow = [2]uint64{200, 4000}
		return c
	}
	intSum, intRecs := runPlacement(t, mk("placement-int"), core.PlacementInterval)
	optSum, optRecs := runPlacement(t, mk("placement-opt"), core.PlacementOptimal)

	if intSum.ForwardPlacement != core.PlacementInterval {
		t.Errorf("interval summary reports placement %q", intSum.ForwardPlacement)
	}
	if optSum.ForwardPlacement != core.PlacementOptimal {
		t.Errorf("optimal summary reports placement %q", optSum.ForwardPlacement)
	}
	if optSum.CyclesEmulated > intSum.CyclesEmulated {
		t.Errorf("optimal placement emulated %d cycles, interval %d — planner regressed",
			optSum.CyclesEmulated, intSum.CyclesEmulated)
	}
	if optSum.ForwardPredictedDelta == 0 || optSum.ForwardDeltaCycles == 0 {
		t.Errorf("optimal summary missing deltas: predicted %d, achieved %d",
			optSum.ForwardPredictedDelta, optSum.ForwardDeltaCycles)
	}
	// Achieved re-emulation can only exceed the prediction by capture
	// overshoot (at most one instruction per checkpoint) plus the byte
	// budget cutting recording short — neither applies on this small
	// campaign, so achieved must not exceed predicted by more than the
	// per-experiment overshoot bound.
	overshootBound := optSum.ForwardPredictedDelta + uint64(optSum.Experiments)*32
	if optSum.ForwardDeltaCycles > overshootBound {
		t.Errorf("achieved delta %d far above predicted %d",
			optSum.ForwardDeltaCycles, optSum.ForwardPredictedDelta)
	}
	if len(intRecs) != len(optRecs) {
		t.Fatalf("record counts differ: interval %d, optimal %d", len(intRecs), len(optRecs))
	}
	// Records are logged under the campaign name, which differs between
	// the two stores; normalize it away before comparing bytes.
	for i := range intRecs {
		a := strings.ReplaceAll(intRecs[i], "placement-int", "placement-X")
		b := strings.ReplaceAll(optRecs[i], "placement-opt", "placement-X")
		if a != b {
			t.Errorf("record %d differs between placements\ninterval %s\noptimal  %s", i, a, b)
		}
	}
	t.Logf("interval: emulated %d predicted-delta %d achieved-delta %d (%d checkpoints' worth)",
		intSum.CyclesEmulated, intSum.ForwardPredictedDelta, intSum.ForwardDeltaCycles, intSum.Forwarded)
	t.Logf("optimal:  emulated %d predicted-delta %d achieved-delta %d",
		optSum.CyclesEmulated, optSum.ForwardPredictedDelta, optSum.ForwardDeltaCycles)
}
