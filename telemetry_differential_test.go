// Differential regression test for the observability layer: telemetry
// is read-only by construction (atomic counters, a span tracer fed
// wall-clock times, a progress tracker) and must never perturb the
// experiment stream. The proof is behavioral, not structural — the same
// campaign runs bare and fully observed (tracer + progress + a live
// /metrics server being scraped concurrently) and the logged
// LoggedSystemState records must be byte-identical, the analysis
// reports equal. Any telemetry code path that touches experiment RNG,
// scan-chain bytes, or record contents fails this test.
package goofi_test

import (
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"goofi/internal/core"
	"goofi/internal/telemetry"
)

// TestTelemetryDifferential: bare vs fully observed single-board run.
func TestTelemetryDifferential(t *testing.T) {
	const n = 12
	bareSum, bareRep, bareRows := chaosRun(t, sortCampaign("telemetry-diff", n, 77, []string{"cpu"}), 1, healthyFactory)

	tr := telemetry.NewTracer()
	prog := telemetry.NewProgress(1)
	srv, err := telemetry.NewServer("127.0.0.1:0", telemetry.Default, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/progress"} {
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	obsSum, obsRep, obsRows := chaosRun(t, sortCampaign("telemetry-diff", n, 77, []string{"cpu"}), 1,
		healthyFactory, core.WithTelemetry(tr, prog))
	close(stop)
	<-scraped

	if obsSum.Experiments != bareSum.Experiments || obsSum.Injected != bareSum.Injected {
		t.Errorf("summaries diverge: bare %d/%d, observed %d/%d",
			bareSum.Experiments, bareSum.Injected, obsSum.Experiments, obsSum.Injected)
	}
	if !reflect.DeepEqual(bareRep, obsRep) {
		t.Errorf("analysis reports diverge:\nbare:     %+v\nobserved: %+v", bareRep, obsRep)
	}
	if len(bareRows) != len(obsRows) {
		t.Fatalf("record counts diverge: bare %d, observed %d", len(bareRows), len(obsRows))
	}
	for i := range bareRows {
		if bareRows[i] != obsRows[i] {
			t.Fatalf("LoggedSystemState record %d diverges:\nbare:     %s\nobserved: %s",
				i, bareRows[i], obsRows[i])
		}
	}

	// The observed run must actually have observed something: one span
	// per experiment plus the plan and reference phases.
	if got := tr.Len(); got != n+2 {
		t.Errorf("tracer recorded %d spans, want %d (plan + reference + %d experiments)", got, n+2, n)
	}
	snap := prog.Snapshot()
	if snap.Done != n || snap.Total != n {
		t.Errorf("progress = %d/%d, want %d/%d", snap.Done, snap.Total, n, n)
	}
}

// TestTelemetryDifferentialParallelBoards: the same invariant with
// board-level concurrency exercising the per-board counters and the
// progress tracker's board slots.
func TestTelemetryDifferentialParallelBoards(t *testing.T) {
	const n, boards = 10, 3
	_, bareRep, bareRows := chaosRun(t, sortCampaign("telemetry-diff-mb", n, 91, []string{"cpu", "icache"}), boards, healthyFactory)

	tr := telemetry.NewTracer()
	prog := telemetry.NewProgress(boards)
	_, obsRep, obsRows := chaosRun(t, sortCampaign("telemetry-diff-mb", n, 91, []string{"cpu", "icache"}), boards,
		healthyFactory, core.WithTelemetry(tr, prog))

	if !reflect.DeepEqual(bareRep, obsRep) {
		t.Errorf("analysis reports diverge with %d boards", boards)
	}
	if !reflect.DeepEqual(bareRows, obsRows) {
		t.Errorf("LoggedSystemState records diverge with %d boards", boards)
	}
	if got := tr.Len(); got != n+2 {
		t.Errorf("tracer recorded %d spans, want %d", got, n+2)
	}
}
